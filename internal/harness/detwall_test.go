package harness

import (
	"fmt"
	"math/rand"
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// detWallGraph builds the small per-schema workload the seed-independence
// wall runs on: a 96-cycle for orient, and for color3 the triangular strip
// whose pendant leaves make the Section 7 ruling-group machinery run for
// real (rulers > 0). Both are ID-permuted so the wall also covers
// non-canonical labellings; the color3 permutation seed is pinned to a
// labelling where the greedy ruling-group placer is feasible (see
// e12Graphs).
func detWallGraph(schema string) *graph.Graph {
	switch schema {
	case "orient":
		g := graph.Cycle(96)
		graph.AssignPermutedIDs(g, rand.New(rand.NewSource(12)))
		return g
	default:
		g := graph.TriangularStrip(80)
		graph.AssignPermutedIDs(g, rand.New(rand.NewSource(1)))
		return g
	}
}

// solutionFingerprint renders a solution canonically for byte-identity
// comparisons across engines and worker counts.
func solutionFingerprint(s *lcl.Solution) string {
	return fmt.Sprintf("%v|%v", s.Node, s.Edge)
}

// TestDetSeedIndependenceWall is the tentpole property wall: for both
// LLL-backed schemas, the deterministic methods (conditional expectations
// and the decomposition-guided variant) produce byte-identical advice
// across 5 distinct seeds, that advice decodes to byte-identical valid
// outputs on every engine at workers -1, 1, and 8, and the seeded
// Moser–Tardos reference — checked against the same lcl.Verify full
// recheck — confirms the deterministic outputs solve the same problem.
func TestDetSeedIndependenceWall(t *testing.T) {
	for _, ds := range DetSchemas() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			g := detWallGraph(ds.Name)
			problem := ds.Problem(g)

			for _, method := range []DetMethod{MethodDet, MethodDecomposed} {
				method := method
				t.Run(string(method), func(t *testing.T) {
					// Advice must ignore the seed entirely.
					var first local.Advice
					var firstFP string
					for _, seed := range e12Seeds() {
						a, err := ds.EncodeWith(method, g, seed, nil)
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						fp := adviceFingerprint(a)
						if first == nil {
							first, firstFP = a, fp
							continue
						}
						if fp != firstFP {
							t.Fatalf("advice differs between seed %d and seed %d", seed, e12Seeds()[0])
						}
					}

					// One advice, every engine, three worker counts: all
					// decodes byte-identical and Verify-clean.
					var wantSol string
					for _, engine := range local.EngineNames() {
						for _, workers := range []int{-1, 1, 8} {
							sol, _, err := ds.DecodeOn(engine, g, first, local.RunConfig{Workers: workers})
							if err != nil {
								t.Fatalf("%s workers=%d: %v", engine, workers, err)
							}
							if err := lcl.Verify(problem, g, sol); err != nil {
								t.Fatalf("%s workers=%d: invalid output: %v", engine, workers, err)
							}
							fp := solutionFingerprint(sol)
							if wantSol == "" {
								wantSol = fp
								continue
							}
							if fp != wantSol {
								t.Fatalf("%s workers=%d decoded differently than the first engine", engine, workers)
							}
						}
					}
				})
			}

			// Moser–Tardos reference: each seed's advice decodes to a valid
			// output under the same full recheck — the deterministic paths
			// trade its seed-dependence away without losing correctness.
			for _, seed := range e12Seeds() {
				a, err := ds.EncodeWith(MethodMT, g, seed, nil)
				if err != nil {
					t.Fatalf("mt seed %d: %v", seed, err)
				}
				sol, _, err := ds.DecodeOn("ball", g, a, local.RunConfig{})
				if err != nil {
					t.Fatalf("mt seed %d decode: %v", seed, err)
				}
				if err := lcl.Verify(problem, g, sol); err != nil {
					t.Fatalf("mt seed %d: invalid output: %v", seed, err)
				}
			}
		})
	}
}

// TestDetRunConfigSwitch pins the RunConfig plumbing: cfg.DetLLL routes
// Encode onto the seed-free path (identical advice for different seeds),
// while the default path stays seeded (the seed reaches the sampler).
func TestDetRunConfigSwitch(t *testing.T) {
	for _, ds := range DetSchemas() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			g := detWallGraph(ds.Name)
			detA, err := ds.Encode(g, 3, local.RunConfig{DetLLL: true})
			if err != nil {
				t.Fatal(err)
			}
			detB, err := ds.Encode(g, 4, local.RunConfig{DetLLL: true})
			if err != nil {
				t.Fatal(err)
			}
			if adviceFingerprint(detA) != adviceFingerprint(detB) {
				t.Fatal("DetLLL advice depends on the seed")
			}
			ref, err := ds.EncodeWith(MethodDet, g, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if adviceFingerprint(detA) != adviceFingerprint(ref) {
				t.Fatal("DetLLL advice differs from the MethodDet reference")
			}
			seeded, err := ds.Encode(g, 3, local.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			sol, _, err := ds.DecodeOn("ball", g, seeded, local.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Verify(ds.Problem(g), g, sol); err != nil {
				t.Fatalf("seeded path invalid: %v", err)
			}
		})
	}
}

// TestDetSchemaByName pins the lookup used by `locad detlll` and the
// serving-layer registry.
func TestDetSchemaByName(t *testing.T) {
	for _, name := range []string{"orient", "color3"} {
		ds, ok := DetSchemaByName(name)
		if !ok || ds.Name != name {
			t.Fatalf("DetSchemaByName(%q) = %q, %v", name, ds.Name, ok)
		}
	}
	if _, ok := DetSchemaByName("nope"); ok {
		t.Fatal("unknown schema name resolved")
	}
}
