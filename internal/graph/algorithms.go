package graph

import "fmt"

// BFSFrom returns the distance (in edges) from src to every node; unreachable
// nodes get -1. The full n-length result is the only allocation; the
// traversal itself runs on pooled scratch storage.
func (g *Graph) BFSFrom(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	s := scratchPool.Get().(*BFSScratch)
	defer scratchPool.Put(s)
	for _, u := range g.BFSWithin(src, -1, s) {
		dist[u] = int(s.dist[u])
	}
	return dist
}

// Dist returns the distance between u and v, or -1 if disconnected. The
// search runs on scratch storage and stops as soon as v is reached, so the
// cost is O(nodes within dist(u,v)), not O(n+m).
func (g *Graph) Dist(u, v int) int {
	if u == v {
		return 0
	}
	s := scratchPool.Get().(*BFSScratch)
	defer scratchPool.Put(s)
	csr := g.Snapshot()
	s.begin(g.n)
	s.visit(int32(u), 0)
	for head := 0; head < len(s.order); head++ {
		x := s.order[head]
		dx := s.dist[x]
		for _, w := range csr.Neighbors(int(x)) {
			if s.stamp[w] != s.epoch {
				if int(w) == v {
					return int(dx) + 1
				}
				s.visit(w, dx+1)
			}
		}
	}
	return -1
}

// Ball returns the node indices at distance <= r from v, in BFS order.
func (g *Graph) Ball(v, r int) []int {
	s := scratchPool.Get().(*BFSScratch)
	defer scratchPool.Put(s)
	order := g.BFSWithin(v, r, s)
	out := make([]int, len(order))
	for i, u := range order {
		out[i] = int(u)
	}
	return out
}

// Sphere returns the node indices at distance exactly r from v, in BFS
// order.
func (g *Graph) Sphere(v, r int) []int {
	s := scratchPool.Get().(*BFSScratch)
	defer scratchPool.Put(s)
	var out []int
	for _, u := range g.BFSWithin(v, r, s) {
		if int(s.dist[u]) == r {
			out = append(out, int(u))
		}
	}
	return out
}

// Components returns, for each node, the index of its connected component,
// along with the number of components. Component indices are assigned in
// order of the smallest node index they contain.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	for v := 0; v < g.n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		queue := []int{v}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				if comp[w] == -1 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph is connected (true for n <= 1).
func (g *Graph) IsConnected() bool {
	_, c := g.Components()
	return c <= 1
}

// Diameter returns the largest finite distance between any pair of nodes in
// the same component (the maximum of component diameters). Returns 0 for
// graphs with no edges. One scratch is reused across all n traversals, so
// the total allocation is O(n) regardless of how many sources are scanned.
func (g *Graph) Diameter() int {
	s := scratchPool.Get().(*BFSScratch)
	defer scratchPool.Put(s)
	d := 0
	for v := 0; v < g.n; v++ {
		// BFS visit order is nondecreasing in distance, so the last node of
		// the traversal carries the eccentricity of v.
		order := g.BFSWithin(v, -1, s)
		if ecc := int(s.dist[order[len(order)-1]]); ecc > d {
			d = ecc
		}
	}
	return d
}

// Eccentricity returns max_u dist(v, u) within v's component.
func (g *Graph) Eccentricity(v int) int {
	s := scratchPool.Get().(*BFSScratch)
	defer scratchPool.Put(s)
	order := g.BFSWithin(v, -1, s)
	return int(s.dist[order[len(order)-1]])
}

// InducedSubgraph returns the subgraph induced by the given node indices,
// preserving node IDs, together with the mapping from new indices to
// original indices.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	idx := make(map[int]int, len(nodes))
	orig := make([]int, len(nodes))
	ids := make([]int64, len(nodes))
	for i, v := range nodes {
		if _, dup := idx[v]; dup {
			panic(fmt.Sprintf("graph: duplicate node %d in induced subgraph", v))
		}
		idx[v] = i
		orig[i] = v
		ids[i] = g.ids[v]
	}
	var edges []Edge
	for i, v := range nodes {
		for _, w := range g.adj[v] {
			if j, ok := idx[w]; ok && i < j {
				edges = append(edges, Edge{U: i, V: j})
			}
		}
	}
	return NewFromEdges(ids, edges), orig
}

// Power returns the k-th power graph G^k: same nodes, an edge between any
// pair at distance 1..k in g.
func (g *Graph) Power(k int) *Graph {
	p := New(g.n)
	if err := p.SetIDs(g.ids); err != nil {
		panic(err)
	}
	for v := 0; v < g.n; v++ {
		for _, w := range g.Ball(v, k) {
			if w > v {
				p.MustAddEdge(v, w)
			}
		}
	}
	return p
}

// Bipartition returns a 2-coloring (values 0/1) of the nodes if the graph is
// bipartite, or ok=false otherwise. Each component is colored starting from
// its smallest node index with side 0.
func (g *Graph) Bipartition() (side []int, ok bool) {
	side = make([]int, g.n)
	for i := range side {
		side[i] = -1
	}
	for v := 0; v < g.n; v++ {
		if side[v] != -1 {
			continue
		}
		side[v] = 0
		queue := []int{v}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				if side[w] == -1 {
					side[w] = 1 - side[u]
					queue = append(queue, w)
				} else if side[w] == side[u] {
					return nil, false
				}
			}
		}
	}
	return side, true
}

// GrowthProfile returns, for radii 0..maxR, the maximum over all nodes of
// |N_{<=r}(v)|. Experiments use it to check which families are inside the
// sub-exponential growth regime at the scales tested.
func (g *Graph) GrowthProfile(maxR int) []int {
	out := make([]int, maxR+1)
	s := scratchPool.Get().(*BFSScratch)
	defer scratchPool.Put(s)
	counts := make([]int, maxR+1)
	for v := 0; v < g.n; v++ {
		for r := range counts {
			counts[r] = 0
		}
		for _, u := range g.BFSWithin(v, maxR, s) {
			counts[s.dist[u]]++
		}
		cum := 0
		for r := 0; r <= maxR; r++ {
			cum += counts[r]
			if cum > out[r] {
				out[r] = cum
			}
		}
	}
	return out
}

// TriangleFree reports whether the graph has no triangle.
func (g *Graph) TriangleFree() bool {
	for _, e := range g.edges {
		for _, w := range g.adj[e.U] {
			if w != e.V && g.HasEdge(w, e.V) {
				return false
			}
		}
	}
	return true
}
