package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestEdgeListRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	graphs := map[string]*Graph{
		"cycle":    Cycle(9),
		"empty":    New(4),
		"single":   New(1),
		"gnp":      RandomGNP(25, 0.2, rng),
		"spreadID": func() *Graph { g := Cycle(12); AssignSpreadIDs(g, rng); return g }(),
	}
	for name, g := range graphs {
		var sb strings.Builder
		if err := WriteEdgeList(&sb, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := ReadEdgeList(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: read: %v\n%s", name, err, sb.String())
		}
		if !Equal(g, back) {
			t.Errorf("%s: roundtrip mismatch", name)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# a comment\n\nn 3\ne 0 1\n# another\ne 1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("got n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"missing n", "e 0 1\n"},
		{"no directives", "# nothing\n"},
		{"duplicate n", "n 2\nn 3\n"},
		{"bad count", "n x\n"},
		{"edge out of range", "n 2\ne 0 5\n"},
		{"loop", "n 2\ne 1 1\n"},
		{"duplicate edge", "n 2\ne 0 1\ne 1 0\n"},
		{"unknown directive", "n 2\nq 1\n"},
		{"id before n", "id 0 5\n"},
		{"partial ids", "n 2\nid 0 7\ne 0 1\n"},
		{"bad id node", "n 2\nid 9 7\n"},
		{"malformed edge", "n 2\ne 0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ReadEdgeList(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Cycle(5), Cycle(5)) {
		t.Error("identical graphs unequal")
	}
	if Equal(Cycle(5), Cycle(6)) || Equal(Cycle(4), Path(4)) {
		t.Error("different graphs equal")
	}
	a, b := Cycle(5), Cycle(5)
	if err := b.SetIDs([]int64{5, 4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if Equal(a, b) {
		t.Error("graphs with different IDs equal")
	}
}
