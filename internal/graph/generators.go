package graph

import (
	"fmt"
	"math/rand"
)

// TryCycle returns the cycle C_n, or an error (wrapping ErrBadSize) when
// n < 3. The Try* generator variants exist for CLI-reachable paths, where a
// bad size is user input, not a programming error.
func TryCycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: cycle needs n >= 3, got %d", ErrBadSize, n)
	}
	g := New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n)
	}
	return g, nil
}

// Cycle returns the cycle C_n (n >= 3); it panics on a bad size.
func Cycle(n int) *Graph { return mustGen(TryCycle(n)) }

// TryPath returns the path P_n on n nodes, or an error when n < 1.
func TryPath(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: path needs n >= 1, got %d", ErrBadSize, n)
	}
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1)
	}
	return g, nil
}

// Path returns the path P_n on n nodes (n >= 1); it panics on a bad size.
func Path(n int) *Graph { return mustGen(TryPath(n)) }

// TryGrid2D returns the rows x cols grid graph, or an error on non-positive
// dimensions. Grids have polynomial (hence sub-exponential) growth and are
// the canonical Section 4 workload.
func TryGrid2D(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: grid needs positive dims, got %dx%d", ErrBadSize, rows, cols)
	}
	g := New(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	return g, nil
}

// Grid2D returns the rows x cols grid graph; it panics on bad dimensions.
func Grid2D(rows, cols int) *Graph { return mustGen(TryGrid2D(rows, cols)) }

// TryTorus2D returns the rows x cols torus (wrap-around grid), or an error
// when either dimension is below 3; 4-regular when rows, cols >= 3. All
// nodes have even degree, making it a natural balanced orientation workload.
func TryTorus2D(rows, cols int) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("%w: torus needs dims >= 3, got %dx%d", ErrBadSize, rows, cols)
	}
	g := New(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddEdge(at(r, c), at(r, (c+1)%cols))
			g.MustAddEdge(at(r, c), at((r+1)%rows, c))
		}
	}
	return g, nil
}

// Torus2D returns the rows x cols torus; it panics on bad dimensions.
func Torus2D(rows, cols int) *Graph { return mustGen(TryTorus2D(rows, cols)) }

// mustGen backs the historical panicking generator signatures.
func mustGen(g *Graph, err error) *Graph {
	if err != nil {
		panic(err)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			g.MustAddEdge(u, a+v)
		}
	}
	return g
}

// Star returns the star K_{1,leaves} with the center at index 0.
func Star(leaves int) *Graph {
	g := New(leaves + 1)
	for v := 1; v <= leaves; v++ {
		g.MustAddEdge(0, v)
	}
	return g
}

// CompleteBinaryTree returns a complete binary tree with the given number
// of levels (level 1 = a single root). Complete binary trees have
// EXPONENTIAL growth; they are included precisely as the canonical family
// outside the sub-exponential regime, for the Theorem 4.1 contrast in
// experiment E1.
func CompleteBinaryTree(levels int) *Graph {
	if levels < 1 {
		panic(fmt.Sprintf("graph: tree needs levels >= 1, got %d", levels))
	}
	n := 1<<uint(levels) - 1
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, (v-1)/2)
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes.
func Hypercube(d int) *Graph {
	if d < 0 || d > 20 {
		panic(fmt.Sprintf("graph: hypercube dimension %d out of range", d))
	}
	n := 1 << uint(d)
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ 1<<uint(b)
			if v < w {
				g.MustAddEdge(v, w)
			}
		}
	}
	return g
}

// Ladder returns the ladder graph (two paths of length n joined by rungs).
func Ladder(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: ladder needs n >= 2, got %d", n))
	}
	g := New(2 * n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1)
		g.MustAddEdge(n+v, n+v+1)
	}
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, n+v)
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n nodes, built from
// a random Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: tree needs n >= 1, got %d", n))
	}
	g := New(n)
	if n == 1 {
		return g
	}
	if n == 2 {
		g.MustAddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	for _, v := range prufer {
		for u := 0; u < n; u++ {
			if degree[u] == 1 {
				g.MustAddEdge(u, v)
				degree[u]--
				degree[v]--
				break
			}
		}
	}
	var last []int
	for u := 0; u < n; u++ {
		if degree[u] == 1 {
			last = append(last, u)
		}
	}
	g.MustAddEdge(last[0], last[1])
	return g
}

// RandomGNP returns an Erdős–Rényi G(n, p) graph.
func RandomGNP(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// RandomRegular returns a random d-regular simple graph on n nodes, built as
// the edge-disjoint union of ⌊d/2⌋ random Hamiltonian cycles plus (for odd d,
// which requires even n) one random perfect matching. Each overlay is
// retried until it avoids the edges already placed, which succeeds quickly
// for the moderate d used in the experiments. Requires n*d even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: random regular needs 0 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d = %d*%d is odd", n, d)
	}
	const maxAttempts = 5000
	g := New(n)
	for c := 0; c < d/2; c++ {
		if !addHamiltonianOverlay(g, rng, maxAttempts) {
			return nil, fmt.Errorf("graph: could not place Hamiltonian overlay %d for d=%d n=%d", c, d, n)
		}
	}
	if d%2 == 1 {
		if !addMatchingOverlay(g, rng, maxAttempts) {
			return nil, fmt.Errorf("graph: could not place matching overlay for d=%d n=%d", d, n)
		}
	}
	return g, nil
}

func addHamiltonianOverlay(g *Graph, rng *rand.Rand, maxAttempts int) bool {
	n := g.N()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		perm := rng.Perm(n)
		ok := true
		for i := 0; i < n; i++ {
			if g.HasEdge(perm[i], perm[(i+1)%n]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := 0; i < n; i++ {
			g.MustAddEdge(perm[i], perm[(i+1)%n])
		}
		return true
	}
	return false
}

func addMatchingOverlay(g *Graph, rng *rand.Rand, maxAttempts int) bool {
	n := g.N()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		perm := rng.Perm(n)
		ok := true
		for i := 0; i < n; i += 2 {
			if g.HasEdge(perm[i], perm[i+1]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := 0; i < n; i += 2 {
			g.MustAddEdge(perm[i], perm[i+1])
		}
		return true
	}
	return false
}

// RandomBipartiteRegular returns a random bipartite d-regular graph with
// parts {0..half-1} and {half..2*half-1}, built as the union of d random
// perfect matchings (with restarts to stay simple).
func RandomBipartiteRegular(half, d int, rng *rand.Rand) (*Graph, error) {
	if d < 0 || d > half {
		return nil, fmt.Errorf("graph: bipartite regular needs 0 <= d <= half, got d=%d half=%d", d, half)
	}
	const maxAttempts = 20000
	g := New(2 * half)
	for matching := 0; matching < d; matching++ {
		placed := false
		for attempt := 0; attempt < maxAttempts && !placed; attempt++ {
			perm := rng.Perm(half)
			ok := true
			for u := 0; u < half; u++ {
				if g.HasEdge(u, half+perm[u]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for u := 0; u < half; u++ {
				g.MustAddEdge(u, half+perm[u])
			}
			placed = true
		}
		if !placed {
			return nil, fmt.Errorf("graph: no simple bipartite %d-regular graph with half=%d found", d, half)
		}
	}
	return g, nil
}

// RandomEvenDegree returns a random graph in which every node has even
// degree, built as the edge-disjoint union of random cycles. cycles is the
// number of cycle overlays; each overlay visits a random subset of nodes.
func RandomEvenDegree(n, cycles int, rng *rand.Rand) *Graph {
	g := New(n)
	for c := 0; c < cycles; c++ {
		addRandomCycleOverlay(g, rng)
	}
	return g
}

func addRandomCycleOverlay(g *Graph, rng *rand.Rand) {
	n := g.N()
	if n < 3 {
		return
	}
	// Random cycle through a random subset of at least 3 nodes; skip edges
	// that already exist (which would create multi-edges) by trying a few
	// permutations.
	for attempt := 0; attempt < 50; attempt++ {
		k := 3 + rng.Intn(n-2)
		perm := rng.Perm(n)[:k]
		ok := true
		for i := 0; i < k; i++ {
			u, v := perm[i], perm[(i+1)%k]
			if g.HasEdge(u, v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := 0; i < k; i++ {
			g.MustAddEdge(perm[i], perm[(i+1)%k])
		}
		return
	}
}

// RandomColorable returns a random graph that is k-colorable by
// construction: nodes are split into k planted classes and each candidate
// cross-class edge is kept with probability p. The planted coloring is
// returned alongside the graph (colors 1..k).
func RandomColorable(n, k int, p float64, rng *rand.Rand) (*Graph, []int) {
	if k < 1 {
		panic(fmt.Sprintf("graph: k-colorable needs k >= 1, got %d", k))
	}
	g := New(n)
	colors := make([]int, n)
	for v := range colors {
		colors[v] = 1 + rng.Intn(k)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if colors[u] != colors[v] && rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g, colors
}

// CyclePowers returns the k-th power of a cycle C_n^k: node i is adjacent to
// the k nearest nodes in each direction. It is 2k-regular with even degrees
// and bounded growth — a useful Δ-sweep family.
func CyclePowers(n, k int) *Graph {
	if n < 2*k+1 {
		panic(fmt.Sprintf("graph: cycle power needs n >= 2k+1, got n=%d k=%d", n, k))
	}
	g := New(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			w := (v + j) % n
			if !g.HasEdge(v, w) {
				g.MustAddEdge(v, w)
			}
		}
	}
	return g
}

// DisjointUnion returns the disjoint union of the given graphs; node indices
// and IDs of later graphs are shifted to stay unique.
func DisjointUnion(gs ...*Graph) *Graph {
	total := 0
	for _, g := range gs {
		total += g.N()
	}
	out := New(total)
	ids := make([]int64, 0, total)
	var maxID int64
	offset := 0
	for _, g := range gs {
		for v := 0; v < g.N(); v++ {
			ids = append(ids, g.ID(v)+maxID)
		}
		for _, e := range g.Edges() {
			out.MustAddEdge(e.U+offset, e.V+offset)
		}
		offset += g.N()
		for v := 0; v < g.N(); v++ {
			if id := ids[len(ids)-g.N()+v]; id > maxID {
				maxID = id
			}
		}
	}
	if err := out.SetIDs(ids); err != nil {
		panic(err)
	}
	return out
}

// Prism returns the n-prism (two n-cycles joined by rungs), a 3-regular
// graph with linear growth.
func Prism(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: prism needs n >= 3, got %d", n))
	}
	g := New(2 * n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
		g.MustAddEdge(n+i, n+(i+1)%n)
		g.MustAddEdge(i, n+i)
	}
	return g
}

// Petersen returns the Petersen graph: 3-regular, girth 5, the classic
// counterexample machine.
func Petersen() *Graph {
	g := New(10)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, (i+1)%5)     // outer cycle
		g.MustAddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.MustAddEdge(i, 5+i)         // spokes
	}
	return g
}

// TryTriangularStrip returns the "hairy" triangular strip on 4k nodes: two
// rails a_0..a_{k-1}, b_0..b_{k-1} with rungs a_i–b_i, rail edges
// a_i–a_{i+1}, b_i–b_{i+1}, diagonals a_i–b_{i+1}, and one pendant leaf on
// every rail node. The strip is 3-chromatic (each step closes a triangle)
// and its color-{2,3} subgraph forms one long component whose color-1
// pendant leaves make the Lemma 7.2 mark-group candidates feasible — the
// family that actually exercises the Section 7 group machinery, which
// cycles, grids and tori never reach.
func TryTriangularStrip(k int) (*Graph, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: triangular strip needs k >= 2, got %d", ErrBadSize, k)
	}
	g := New(4 * k)
	a := func(i int) int { return 4 * i }
	b := func(i int) int { return 4*i + 1 }
	for i := 0; i < k; i++ {
		g.MustAddEdge(a(i), b(i))
		g.MustAddEdge(a(i), 4*i+2) // pendant leaf of a_i
		g.MustAddEdge(b(i), 4*i+3) // pendant leaf of b_i
		if i+1 < k {
			g.MustAddEdge(a(i), a(i+1))
			g.MustAddEdge(b(i), b(i+1))
			g.MustAddEdge(a(i), b(i+1))
		}
	}
	return g, nil
}

// TriangularStrip returns the hairy triangular strip on 4k nodes (k >= 2);
// it panics on a bad size.
func TriangularStrip(k int) *Graph { return mustGen(TryTriangularStrip(k)) }

// TryChordedCycle returns the squared cycle with pendant leaves on 2n
// nodes: cycle c_0..c_{n-1} with distance-2 chords c_i–c_{i+2} and one
// pendant leaf per cycle node. Like the triangular strip it is 3-chromatic
// with a single long color-{2,3} component and leaf-provided color-1
// neighbors, so the Section 7 ruling-group placement runs for real on it.
func TryChordedCycle(n int) (*Graph, error) {
	if n < 5 {
		return nil, fmt.Errorf("%w: chorded cycle needs n >= 5, got %d", ErrBadSize, n)
	}
	g := New(2 * n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
		g.MustAddEdge(i, (i+2)%n)
		g.MustAddEdge(i, n+i) // pendant leaf
	}
	return g, nil
}

// ChordedCycle returns the chorded cycle with leaves on 2n nodes (n >= 5);
// it panics on a bad size.
func ChordedCycle(n int) *Graph { return mustGen(TryChordedCycle(n)) }
