package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g in a line-oriented text format:
//
//	# comments and blank lines are ignored
//	n <nodes>
//	id <node> <identifier>       (omitted when identifiers are sequential)
//	e <u> <v>                    (one line per edge, by node index)
//
// The format round-trips exactly through ReadEdgeList, including the
// identifier assignment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	sequential := true
	for v := 0; v < g.N(); v++ {
		if g.ID(v) != int64(v+1) {
			sequential = false
			break
		}
	}
	if !sequential {
		for v := 0; v < g.N(); v++ {
			if _, err := fmt.Fprintf(bw, "id %d %d\n", v, g.ID(v)); err != nil {
				return err
			}
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	ids := map[int]int64{}
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate n directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: n needs one argument", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			g = New(n)
		case "id":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: id before n", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: id needs two arguments", lineNo)
			}
			v, err1 := strconv.Atoi(fields[1])
			id, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil || v < 0 || v >= g.N() {
				return nil, fmt.Errorf("graph: line %d: bad id directive", lineNo)
			}
			ids[v] = id
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: e before n", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: e needs two arguments", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge", lineNo)
			}
			if _, err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing n directive")
	}
	if len(ids) > 0 {
		if len(ids) != g.N() {
			return nil, fmt.Errorf("graph: %d id directives for %d nodes", len(ids), g.N())
		}
		all := make([]int64, g.N())
		for v, id := range ids {
			all[v] = id
		}
		if err := g.SetIDs(all); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Equal reports whether two graphs are identical: same node count, same
// identifiers per index, and the same edge set.
func Equal(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		if a.ID(v) != b.ID(v) {
			return false
		}
	}
	edgeKey := func(g *Graph) []string {
		keys := make([]string, 0, g.M())
		for _, e := range g.Edges() {
			keys = append(keys, fmt.Sprintf("%d-%d", e.U, e.V))
		}
		sort.Strings(keys)
		return keys
	}
	ka, kb := edgeKey(a), edgeKey(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
