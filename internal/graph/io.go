package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g in a line-oriented text format:
//
//	# comments and blank lines are ignored
//	n <nodes>
//	id <node> <identifier>       (omitted when identifiers are sequential)
//	e <u> <v>                    (one line per edge, by node index)
//
// The format round-trips exactly through ReadEdgeList, including the
// identifier assignment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	sequential := true
	for v := 0; v < g.N(); v++ {
		if g.ID(v) != int64(v+1) {
			sequential = false
			break
		}
	}
	if !sequential {
		for v := 0; v < g.N(); v++ {
			if _, err := fmt.Fprintf(bw, "id %d %d\n", v, g.ID(v)); err != nil {
				return err
			}
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxParseNodes caps the node count the parser accepts: beyond this, a
// malformed or hostile "n" directive would allocate gigabytes of adjacency
// storage before any edge is even read (the fuzzer finds exactly this line).
// Legitimate inputs in this codebase are orders of magnitude smaller.
const maxParseNodes = 1 << 20

// ReadEdgeList parses the WriteEdgeList format. Every rejection is a typed
// parse error (errors.Is(err, ErrParse)) carrying the 1-based line number of
// the offending directive; the parser never panics, whatever the input.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	ids := map[int]int64{}
	lineNo := 0
	fail := func(format string, args ...any) (*Graph, error) {
		return nil, fmt.Errorf("%w: line %d: %s", ErrParse, lineNo, fmt.Sprintf(format, args...))
	}
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if g != nil {
				return fail("duplicate n directive")
			}
			if len(fields) != 2 {
				return fail("n needs one argument")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return fail("bad node count %q", fields[1])
			}
			if n > maxParseNodes {
				return fail("node count %d exceeds the parser cap %d", n, maxParseNodes)
			}
			g = New(n)
		case "id":
			if g == nil {
				return fail("id before n")
			}
			if len(fields) != 3 {
				return fail("id needs two arguments")
			}
			v, err1 := strconv.Atoi(fields[1])
			id, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil || v < 0 || v >= g.N() {
				return fail("bad id directive")
			}
			ids[v] = id
		case "e":
			if g == nil {
				return fail("e before n")
			}
			if len(fields) != 3 {
				return fail("e needs two arguments")
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return fail("bad edge")
			}
			if _, err := g.AddEdge(u, v); err != nil {
				return fail("%v", err)
			}
		default:
			return fail("unknown directive %q", fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	if g == nil {
		return nil, fmt.Errorf("%w: missing n directive", ErrParse)
	}
	if len(ids) > 0 {
		if len(ids) != g.N() {
			return nil, fmt.Errorf("%w: %d id directives for %d nodes", ErrParse, len(ids), g.N())
		}
		all := make([]int64, g.N())
		for v, id := range ids {
			all[v] = id
		}
		if err := g.SetIDs(all); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
	}
	return g, nil
}

// Equal reports whether two graphs are identical: same node count, same
// identifiers per index, and the same edge set.
func Equal(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		if a.ID(v) != b.ID(v) {
			return false
		}
	}
	edgeKey := func(g *Graph) []string {
		keys := make([]string, 0, g.M())
		for _, e := range g.Edges() {
			keys = append(keys, fmt.Sprintf("%d-%d", e.U, e.V))
		}
		sort.Strings(keys)
		return keys
	}
	ka, kb := edgeKey(a), edgeKey(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
