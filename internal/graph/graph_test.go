package graph

import (
	"math/rand"
	"testing"
)

func TestNewGraphBasics(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.N(), g.M())
	}
	e, err := g.AddEdge(0, 2)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("HasEdge false after AddEdge")
	}
	if got := g.Edge(e); got != (Edge{U: 0, V: 2}) {
		t.Errorf("Edge(%d) = %v", e, got)
	}
	if g.Other(e, 0) != 2 || g.Other(e, 2) != 0 {
		t.Error("Other wrong")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 0 {
		t.Error("degrees wrong")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	tests := []struct {
		name string
		u, v int
	}{
		{"loop", 1, 1},
		{"duplicate", 1, 0},
		{"out of range low", -1, 0},
		{"out of range high", 0, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := g.AddEdge(tt.u, tt.v); err == nil {
				t.Errorf("AddEdge(%d,%d) succeeded, want error", tt.u, tt.v)
			}
		})
	}
}

func TestEdgeIndexAlignment(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	nbrs := g.Neighbors(0)
	incs := g.IncidentEdges(0)
	for i := range nbrs {
		if g.Other(incs[i], 0) != nbrs[i] {
			t.Errorf("incident edge %d not aligned with neighbor %d", incs[i], nbrs[i])
		}
	}
	if g.EdgeIndex(0, 2) != 1 || g.EdgeIndex(2, 0) != 1 {
		t.Error("EdgeIndex wrong")
	}
	if g.EdgeIndex(1, 2) != -1 {
		t.Error("EdgeIndex for non-edge should be -1")
	}
}

func TestSetIDs(t *testing.T) {
	g := New(3)
	if err := g.SetIDs([]int64{10, 20, 30}); err != nil {
		t.Fatalf("SetIDs: %v", err)
	}
	if g.ID(1) != 20 || g.NodeByID(30) != 2 || g.NodeByID(99) != -1 {
		t.Error("IDs not installed")
	}
	if err := g.SetIDs([]int64{1, 1, 2}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if err := g.SetIDs([]int64{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := g.SetIDs([]int64{0, 1, 2}); err == nil {
		t.Error("non-positive ID accepted")
	}
}

func TestSortAdjacencyByID(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	if err := g.SetIDs([]int64{100, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	g.SortAdjacencyByID()
	want := []int{3, 2, 1} // by IDs 1 < 2 < 3
	got := g.Neighbors(0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", got, want)
		}
	}
	// Incident edges stay aligned.
	for i, inc := range g.IncidentEdges(0) {
		if g.Other(inc, 0) != got[i] {
			t.Error("incident edges misaligned after sort")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Cycle(5)
	c := g.Clone()
	c.MustAddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Error("Clone shares storage with original")
	}
	if c.ID(3) != g.ID(3) {
		t.Error("Clone lost IDs")
	}
}

func TestValidate(t *testing.T) {
	gens := map[string]*Graph{
		"cycle":  Cycle(7),
		"path":   Path(5),
		"grid":   Grid2D(3, 4),
		"torus":  Torus2D(3, 3),
		"k5":     Complete(5),
		"k23":    CompleteBipartite(2, 3),
		"star":   Star(6),
		"tree":   CompleteBinaryTree(4),
		"cube":   Hypercube(3),
		"ladder": Ladder(4),
		"cpower": CyclePowers(9, 2),
		"union":  DisjointUnion(Cycle(3), Path(2)),
	}
	for name, g := range gens {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	tests := []struct {
		name        string
		g           *Graph
		n, m, delta int
	}{
		{"cycle7", Cycle(7), 7, 7, 2},
		{"path1", Path(1), 1, 0, 0},
		{"path5", Path(5), 5, 4, 2},
		{"grid3x4", Grid2D(3, 4), 12, 17, 4},
		{"torus3x3", Torus2D(3, 3), 9, 18, 4},
		{"k5", Complete(5), 5, 10, 4},
		{"k23", CompleteBipartite(2, 3), 5, 6, 3},
		{"star6", Star(6), 7, 6, 6},
		{"tree3", CompleteBinaryTree(3), 7, 6, 3},
		{"cube3", Hypercube(3), 8, 12, 3},
		{"ladder4", Ladder(4), 8, 10, 3},
		{"cpower9_2", CyclePowers(9, 2), 9, 18, 4},
		{"prism5", Prism(5), 10, 15, 3},
		{"petersen", Petersen(), 10, 15, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n || tt.g.M() != tt.m || tt.g.MaxDegree() != tt.delta {
				t.Errorf("got n=%d m=%d Δ=%d, want n=%d m=%d Δ=%d",
					tt.g.N(), tt.g.M(), tt.g.MaxDegree(), tt.n, tt.m, tt.delta)
			}
		})
	}
}

func TestTorusEvenDegrees(t *testing.T) {
	g := Torus2D(4, 5)
	if !g.AllDegreesEven() || !g.IsRegular() {
		t.Error("torus should be 4-regular")
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 10, 50} {
		g := RandomTree(n, rng)
		if g.M() != n-1 && n > 0 {
			if !(n == 1 && g.M() == 0) {
				t.Errorf("tree n=%d has m=%d", n, g.M())
			}
		}
		if !g.IsConnected() {
			t.Errorf("tree n=%d not connected", n)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("tree n=%d: %v", n, err)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {16, 6}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("node %d degree %d, want %d", v, g.Degree(v), tc.d)
			}
		}
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("d >= n accepted")
	}
}

func TestRandomBipartiteRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, err := RandomBipartiteRegular(8, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular() || g.MaxDegree() != 4 {
		t.Errorf("not 4-regular: Δ=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	if _, ok := g.Bipartition(); !ok {
		t.Error("not bipartite")
	}
}

func TestRandomEvenDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := RandomEvenDegree(30, 5, rng)
	if !g.AllDegreesEven() {
		t.Error("degrees not all even")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRandomColorable(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g, colors := RandomColorable(40, 3, 0.3, rng)
	for _, e := range g.Edges() {
		if colors[e.U] == colors[e.V] {
			t.Fatalf("planted coloring violated on edge %v", e)
		}
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDisjointUnionIDsUnique(t *testing.T) {
	g := DisjointUnion(Cycle(4), Cycle(3), Path(2))
	seen := make(map[int64]bool)
	for v := 0; v < g.N(); v++ {
		if seen[g.ID(v)] {
			t.Fatalf("duplicate ID %d", g.ID(v))
		}
		seen[g.ID(v)] = true
	}
	if _, c := g.Components(); c != 3 {
		t.Errorf("components = %d, want 3", c)
	}
}
