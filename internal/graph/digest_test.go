package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDigestMatchesEqual(t *testing.T) {
	a := Cycle(40)
	b := Cycle(40)
	if a.Digest() != b.Digest() {
		t.Fatalf("identical cycles digest differently")
	}
	if !Equal(a, b) {
		t.Fatalf("identical cycles not Equal")
	}
}

func TestDigestDistinguishes(t *testing.T) {
	base := Cycle(16)
	cases := map[string]*Graph{
		"node count": Cycle(17),
		"edge set":   Path(16),
	}
	remapped := Cycle(16)
	AssignPermutedIDs(remapped, rand.New(rand.NewSource(7)))
	cases["identifiers"] = remapped
	extra := Cycle(16)
	extra.MustAddEdge(0, 8)
	cases["extra edge"] = extra
	for name, g := range cases {
		if g.Digest() == base.Digest() {
			t.Errorf("%s: digest collision with the base cycle", name)
		}
	}
}

func TestDigestStableUnderSnapshot(t *testing.T) {
	g := Grid2D(5, 5)
	before := g.Digest()
	g.Snapshot() // caching the CSR must not change the identity
	if after := g.Digest(); after != before {
		t.Fatalf("digest changed after Snapshot: %s vs %s", before, after)
	}
}

func TestDigestRoundTripsThroughIO(t *testing.T) {
	g := Torus2D(4, 5)
	AssignPermutedIDs(g, rand.New(rand.NewSource(3)))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Digest() != g2.Digest() {
		t.Fatalf("digest not preserved by edge-list round trip")
	}
}
