package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBFSDistancesOnPath(t *testing.T) {
	g := Path(5)
	dist := g.BFSFrom(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
	if g.Dist(1, 4) != 3 {
		t.Error("Dist wrong")
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := DisjointUnion(Path(2), Path(2))
	dist := g.BFSFrom(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable nodes got distances %v", dist)
	}
}

func TestBallAndSphere(t *testing.T) {
	g := Grid2D(5, 5)
	center := 12 // middle of the grid
	ball := g.Ball(center, 1)
	if len(ball) != 5 {
		t.Errorf("Ball(center,1) has %d nodes, want 5", len(ball))
	}
	if len(g.Ball(center, 0)) != 1 {
		t.Error("Ball radius 0 should be just the center")
	}
	sphere := g.Sphere(center, 2)
	if len(sphere) != 8 {
		t.Errorf("Sphere(center,2) has %d nodes, want 8", len(sphere))
	}
}

func TestComponents(t *testing.T) {
	g := DisjointUnion(Cycle(3), Path(4), Path(1))
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[0] == comp[3] {
		t.Errorf("component labels wrong: %v", comp)
	}
	if !Cycle(4).IsConnected() {
		t.Error("cycle reported disconnected")
	}
}

func TestDiameterKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", Path(5), 4},
		{"cycle6", Cycle(6), 3},
		{"cycle7", Cycle(7), 3},
		{"k4", Complete(4), 1},
		{"grid3x3", Grid2D(3, 3), 4},
		{"cube3", Hypercube(3), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Diameter(); got != tt.want {
				t.Errorf("Diameter = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(5)
	if g.Eccentricity(2) != 2 || g.Eccentricity(0) != 4 {
		t.Error("eccentricity wrong on path")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, orig := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 || sub.M() != 2 { // edges {0,1},{1,2}; node 4 isolated
		t.Errorf("sub: n=%d m=%d", sub.N(), sub.M())
	}
	if orig[3] != 4 {
		t.Errorf("orig mapping wrong: %v", orig)
	}
	if sub.ID(3) != g.ID(4) {
		t.Error("IDs not preserved")
	}
}

func TestPowerGraph(t *testing.T) {
	g := Path(5)
	p2 := g.Power(2)
	if !p2.HasEdge(0, 2) || !p2.HasEdge(0, 1) || p2.HasEdge(0, 3) {
		t.Error("power graph edges wrong")
	}
	// In C_n^k nodes within distance k are adjacent.
	c := Cycle(8).Power(3)
	if c.MaxDegree() != 6 {
		t.Errorf("C8^3 Δ = %d, want 6", c.MaxDegree())
	}
}

func TestBipartition(t *testing.T) {
	if _, ok := Cycle(5).Bipartition(); ok {
		t.Error("odd cycle reported bipartite")
	}
	side, ok := Cycle(6).Bipartition()
	if !ok {
		t.Fatal("even cycle reported non-bipartite")
	}
	for _, e := range Cycle(6).Edges() {
		if side[e.U] == side[e.V] {
			t.Fatal("bipartition not proper")
		}
	}
	if _, ok := Grid2D(4, 4).Bipartition(); !ok {
		t.Error("grid reported non-bipartite")
	}
}

func TestGrowthProfile(t *testing.T) {
	// Cycle: ball of radius r has 2r+1 nodes (until wrapping).
	prof := Cycle(20).GrowthProfile(4)
	for r := 0; r <= 4; r++ {
		if prof[r] != 2*r+1 {
			t.Errorf("cycle growth at r=%d is %d, want %d", r, prof[r], 2*r+1)
		}
	}
	// Binary tree grows exponentially: ball radius 3 from the root covers 15.
	tp := CompleteBinaryTree(6).GrowthProfile(3)
	if tp[3] < 15 {
		t.Errorf("tree growth at r=3 is %d, want >= 15", tp[3])
	}
}

func TestTriangleFree(t *testing.T) {
	if !Cycle(5).TriangleFree() || !Grid2D(3, 3).TriangleFree() {
		t.Error("triangle-free graphs misreported")
	}
	if Complete(3).TriangleFree() {
		t.Error("K3 reported triangle-free")
	}
}

func TestIDAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Cycle(12)
	AssignPermutedIDs(g, rng)
	seen := map[int64]bool{}
	for v := 0; v < g.N(); v++ {
		id := g.ID(v)
		if id < 1 || id > 12 || seen[id] {
			t.Fatalf("bad permuted ID %d", id)
		}
		seen[id] = true
	}
	AssignSpreadIDs(g, rng)
	for v := 0; v < g.N(); v++ {
		if g.ID(v) < 1 || g.ID(v) > 12*12*12 {
			t.Fatalf("spread ID %d out of range", g.ID(v))
		}
	}
	AssignSequentialIDs(g)
	if g.ID(0) != 1 || g.ID(11) != 12 {
		t.Error("sequential IDs wrong")
	}
}

func TestRemapIDsOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Cycle(15)
	AssignSpreadIDs(g, rng)
	before := make([]int64, g.N())
	for v := range before {
		before[v] = g.ID(v)
	}
	RemapIDsOrderPreserving(g, rng)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if (before[u] < before[v]) != (g.ID(u) < g.ID(v)) {
				t.Fatalf("order not preserved between nodes %d and %d", u, v)
			}
		}
	}
}

func TestBallMatchesBFSProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := RandomGNP(20, 0.15, r)
		v := rng.Intn(20)
		rad := rng.Intn(4)
		dist := g.BFSFrom(v)
		ball := g.Ball(v, rad)
		inBall := make(map[int]bool, len(ball))
		for _, u := range ball {
			inBall[u] = true
		}
		for u, d := range dist {
			want := d >= 0 && d <= rad
			if inBall[u] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
