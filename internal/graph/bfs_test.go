package graph

import (
	"math/rand"
	"testing"
)

// referenceBall is the historical map-based bounded BFS, kept as the test
// oracle for order and membership of the scratch-based implementation.
func referenceBall(g *Graph, v, r int) []int {
	dist := map[int]int{v: 0}
	queue := []int{v}
	out := []int{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == r {
			continue
		}
		for _, w := range g.adj[u] {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
				out = append(out, w)
			}
		}
	}
	return out
}

func testGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	reg, err := RandomRegular(40, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"cycle":    Cycle(17),
		"path":     Path(9),
		"grid":     Grid2D(6, 7),
		"tree":     CompleteBinaryTree(5),
		"star":     Star(8),
		"complete": Complete(6),
		"gnp":      RandomGNP(30, 0.15, rng),
		"regular":  reg,
		"isolated": New(5),
	}
}

func TestBFSWithinMatchesReference(t *testing.T) {
	s := NewBFSScratch() // one scratch reused across every traversal
	for name, g := range testGraphs(t) {
		for _, r := range []int{0, 1, 2, 3, 5, -1} {
			for v := 0; v < g.N(); v++ {
				rr := r
				if rr < 0 {
					rr = g.N() // unbounded == radius n for the reference
				}
				want := referenceBall(g, v, rr)
				got := g.BFSWithin(v, r, s)
				if len(got) != len(want) {
					t.Fatalf("%s v=%d r=%d: |ball| = %d, want %d", name, v, r, len(got), len(want))
				}
				ref := g.BFSFrom(v)
				for i, u := range got {
					if int(u) != want[i] {
						t.Fatalf("%s v=%d r=%d: order[%d] = %d, want %d", name, v, r, i, u, want[i])
					}
					if s.Dist(int(u)) != ref[u] {
						t.Fatalf("%s v=%d r=%d: dist[%d] = %d, want %d", name, v, r, u, s.Dist(int(u)), ref[u])
					}
					if s.Pos(int(u)) != i {
						t.Fatalf("%s v=%d r=%d: pos[%d] = %d, want %d", name, v, r, u, s.Pos(int(u)), i)
					}
				}
			}
		}
	}
}

func TestBFSScratchUnvisitedQueries(t *testing.T) {
	g := Cycle(10)
	s := NewBFSScratch()
	g.BFSWithin(0, 1, s)
	if d := s.Dist(5); d != -1 {
		t.Errorf("Dist of node outside ball = %d, want -1", d)
	}
	if p := s.Pos(5); p != -1 {
		t.Errorf("Pos of node outside ball = %d, want -1", p)
	}
	if s.Dist(-1) != -1 || s.Pos(99) != -1 {
		t.Error("out-of-range queries must return -1")
	}
	// A new traversal invalidates the old epoch without clearing arrays.
	g.BFSWithin(5, 1, s)
	if s.Dist(0) != -1 {
		t.Error("stale visit from previous traversal leaked through")
	}
	if s.Dist(5) != 0 || s.Dist(4) != 1 || s.Dist(6) != 1 {
		t.Error("second traversal wrong")
	}
}

func TestDistBounded(t *testing.T) {
	for name, g := range testGraphs(t) {
		for u := 0; u < g.N(); u++ {
			ref := g.BFSFrom(u)
			for v := 0; v < g.N(); v++ {
				if d := g.Dist(u, v); d != ref[v] {
					t.Fatalf("%s: Dist(%d,%d) = %d, want %d", name, u, v, d, ref[v])
				}
			}
		}
	}
}

func TestDiameterAndEccentricityScratch(t *testing.T) {
	for name, g := range testGraphs(t) {
		if g.N() == 0 {
			continue
		}
		want := 0
		for v := 0; v < g.N(); v++ {
			ecc := 0
			for _, d := range g.BFSFrom(v) {
				if d > ecc {
					ecc = d
				}
			}
			if got := g.Eccentricity(v); got != ecc {
				t.Fatalf("%s: Eccentricity(%d) = %d, want %d", name, v, got, ecc)
			}
			if ecc > want {
				want = ecc
			}
		}
		if got := g.Diameter(); got != want {
			t.Fatalf("%s: Diameter = %d, want %d", name, got, want)
		}
	}
}

func TestSnapshotMatchesAdjacency(t *testing.T) {
	for name, g := range testGraphs(t) {
		c := g.Snapshot()
		if c.N() != g.N() {
			t.Fatalf("%s: snapshot has %d nodes, want %d", name, c.N(), g.N())
		}
		if c.MaxDegree() != g.MaxDegree() {
			t.Fatalf("%s: snapshot Δ = %d, want %d", name, c.MaxDegree(), g.MaxDegree())
		}
		for v := 0; v < g.N(); v++ {
			adj := g.Neighbors(v)
			nbrs := c.Neighbors(v)
			if len(nbrs) != len(adj) || c.Degree(v) != len(adj) {
				t.Fatalf("%s: snapshot degree mismatch at %d", name, v)
			}
			for i, w := range nbrs {
				if int(w) != adj[i] {
					t.Fatalf("%s: snapshot neighbor order differs at %d", name, v)
				}
			}
		}
		if g.Snapshot() != c {
			t.Errorf("%s: snapshot not cached", name)
		}
	}
}

func TestSnapshotInvalidation(t *testing.T) {
	g := Path(4)
	c := g.Snapshot()
	if c.MaxDegree() != 2 {
		t.Fatalf("Δ = %d, want 2", c.MaxDegree())
	}
	g.MustAddEdge(0, 2)
	c2 := g.Snapshot()
	if c2 == c {
		t.Fatal("AddEdge did not invalidate the snapshot")
	}
	if c2.Degree(0) != 2 || g.MaxDegree() != 3 {
		t.Fatal("rebuilt snapshot is stale")
	}
	g.SortAdjacencyByID()
	if g.Snapshot() == c2 {
		t.Fatal("SortAdjacencyByID did not invalidate the snapshot")
	}
}

func TestNewFromEdgesMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inc := RandomGNP(25, 0.2, rng)
	AssignPermutedIDs(inc, rng)

	ids := make([]int64, inc.N())
	for v := range ids {
		ids[v] = inc.ID(v)
	}
	bulk := NewFromEdges(ids, append([]Edge(nil), inc.Edges()...))
	if err := bulk.Validate(); err != nil {
		t.Fatal(err)
	}
	if bulk.N() != inc.N() || bulk.M() != inc.M() {
		t.Fatalf("size mismatch: %s vs %s", bulk, inc)
	}
	for v := 0; v < inc.N(); v++ {
		if bulk.ID(v) != inc.ID(v) {
			t.Fatalf("ID mismatch at %d", v)
		}
		a, b := inc.Neighbors(v), bulk.Neighbors(v)
		ia, ib := inc.IncidentEdges(v), bulk.IncidentEdges(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] || ia[i] != ib[i] {
				t.Fatalf("adjacency order mismatch at node %d slot %d", v, i)
			}
		}
	}
}

func TestNewFromEdgesRejectsBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("dup id", func() { NewFromEdges([]int64{1, 1}, nil).NodeByID(1) })
	mustPanic("bad id", func() { NewFromEdges([]int64{0}, nil) })
	mustPanic("loop", func() { NewFromEdges([]int64{1, 2}, []Edge{{U: 1, V: 1}}) })
	mustPanic("reversed", func() { NewFromEdges([]int64{1, 2}, []Edge{{U: 1, V: 0}}) })
	mustPanic("range", func() { NewFromEdges([]int64{1, 2}, []Edge{{U: 0, V: 2}}) })
}

func TestSphereMembership(t *testing.T) {
	for name, g := range testGraphs(t) {
		for v := 0; v < g.N(); v++ {
			ref := g.BFSFrom(v)
			for _, r := range []int{0, 1, 2, 4} {
				want := map[int]bool{}
				for u, d := range ref {
					if d == r {
						want[u] = true
					}
				}
				got := g.Sphere(v, r)
				if len(got) != len(want) {
					t.Fatalf("%s v=%d r=%d: |sphere| = %d, want %d", name, v, r, len(got), len(want))
				}
				for _, u := range got {
					if !want[u] {
						t.Fatalf("%s v=%d r=%d: node %d not at distance %d", name, v, r, u, r)
					}
				}
			}
		}
	}
}
