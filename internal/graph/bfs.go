package graph

import (
	"fmt"
	"sync"
)

// CSR is an immutable compressed-sparse-row snapshot of a graph's adjacency
// structure: all neighbor lists packed into one contiguous array. The view
// engine and the bounded-BFS hot path iterate neighbors through a CSR
// instead of the per-node slices to avoid pointer chasing, and the snapshot
// carries the precomputed maximum degree so hot loops never rescan for Δ.
//
// Neighbor order within a node matches the graph's adjacency order, so
// traversals over a CSR visit nodes in exactly the same order as traversals
// over Neighbors.
type CSR struct {
	offsets []int32 // len n+1; neighbors of v are targets[offsets[v]:offsets[v+1]]
	targets []int32 // concatenated neighbor indices, len 2m
	maxDeg  int
}

// Neighbors returns the neighbor indices of v as a shared slice; it must not
// be modified.
func (c *CSR) Neighbors(v int) []int32 { return c.targets[c.offsets[v]:c.offsets[v+1]] }

// Degree returns the degree of v.
func (c *CSR) Degree(v int) int { return int(c.offsets[v+1] - c.offsets[v]) }

// MaxDegree returns the precomputed maximum degree Δ.
func (c *CSR) MaxDegree() int { return c.maxDeg }

// N returns the number of nodes in the snapshot.
func (c *CSR) N() int { return len(c.offsets) - 1 }

// Snapshot returns the graph's CSR adjacency snapshot, building and caching
// it on first use. AddEdge invalidates the cache, so a snapshot taken after
// construction finishes is built exactly once per graph. Concurrent callers
// may race to build the first snapshot; every result is equivalent.
func (g *Graph) Snapshot() *CSR {
	if c := g.snap.Load(); c != nil {
		return c
	}
	c := g.buildCSR()
	g.snap.Store(c)
	return c
}

func (g *Graph) buildCSR() *CSR {
	c := &CSR{
		offsets: make([]int32, g.n+1),
		targets: make([]int32, 0, 2*len(g.edges)),
	}
	for v := 0; v < g.n; v++ {
		c.offsets[v] = int32(len(c.targets))
		for _, w := range g.adj[v] {
			c.targets = append(c.targets, int32(w))
		}
		if d := len(g.adj[v]); d > c.maxDeg {
			c.maxDeg = d
		}
	}
	c.offsets[g.n] = int32(len(c.targets))
	return c
}

// BFSScratch holds the reusable state of bounded breadth-first traversals:
// an epoch-stamped visited array (no clearing between calls), per-node
// distances and visit positions, and the traversal order, which doubles as
// the BFS queue. A zero BFSScratch is ready to use; it grows to the largest
// graph it has seen and is NOT safe for concurrent use — give each worker
// its own.
type BFSScratch struct {
	stamp []uint32 // stamp[v] == epoch  ⇔  v visited in the current traversal
	dist  []int32
	pos   []int32 // position of v in order, for view-local index lookup
	order []int32 // nodes in visit order; also the BFS queue
	epoch uint32
}

// NewBFSScratch returns an empty scratch; it sizes itself lazily.
func NewBFSScratch() *BFSScratch { return &BFSScratch{} }

// begin starts a new traversal epoch over n nodes.
func (s *BFSScratch) begin(n int) {
	if len(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.dist = make([]int32, n)
		s.pos = make([]int32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wrapped after 2^32 traversals: clear stamps once
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.order = s.order[:0]
}

// Dist returns the distance from the most recent traversal's source to v, or
// -1 if v was not reached.
func (s *BFSScratch) Dist(v int) int {
	if v < 0 || v >= len(s.stamp) || s.stamp[v] != s.epoch {
		return -1
	}
	return int(s.dist[v])
}

// Pos returns v's position in the most recent traversal's visit order, or -1
// if v was not reached. Visit positions are the canonical view-local node
// indices used by the view engine.
func (s *BFSScratch) Pos(v int) int {
	if v < 0 || v >= len(s.stamp) || s.stamp[v] != s.epoch {
		return -1
	}
	return int(s.pos[v])
}

// visit stamps v at distance d and appends it to the order.
func (s *BFSScratch) visit(v int32, d int32) {
	s.stamp[v] = s.epoch
	s.dist[v] = d
	s.pos[v] = int32(len(s.order))
	s.order = append(s.order, v)
}

// Begin starts a new traversal epoch over n nodes for an externally driven
// traversal: the caller decides which nodes to Visit and in what order, and
// the scratch supplies the epoch-stamped visited set, distances, positions
// and visit order. This is the entry point multi-source traversals with
// custom frontier schedules (e.g. the shifted-start decomposition in
// internal/decomp) build on, sharing the no-clearing epoch machinery of
// BFSWithin.
func (s *BFSScratch) Begin(n int) { s.begin(n) }

// Visit marks v visited at distance d in the current epoch and appends it to
// the visit order. Visiting an already-visited node corrupts the order; the
// caller must check Visited first.
func (s *BFSScratch) Visit(v, d int) { s.visit(int32(v), int32(d)) }

// Visited reports whether v has been visited in the current epoch.
func (s *BFSScratch) Visited(v int) bool {
	return v >= 0 && v < len(s.stamp) && s.stamp[v] == s.epoch
}

// Order returns the nodes visited in the current epoch, in visit order. The
// slice is owned by the scratch: it is valid until the next Begin/traversal
// and grows as the caller Visits more nodes (re-slice after each Visit
// batch).
func (s *BFSScratch) Order() []int32 { return s.order }

// BFSWithin runs a breadth-first traversal from v truncated at radius r and
// returns the nodes at distance <= r in BFS order (v first). A negative r
// means unbounded (a full-component traversal). Distances and visit
// positions of the returned nodes are available from the scratch until its
// next traversal; the returned slice is owned by the scratch and is likewise
// valid only until the next traversal.
//
// Work is O(|ball| + edges inside the ball), independent of the graph size:
// this is the bounded counterpart of BFSFrom that the view engine is built
// on.
func (g *Graph) BFSWithin(v, r int, s *BFSScratch) []int32 {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: BFSWithin source %d out of range [0,%d)", v, g.n))
	}
	csr := g.Snapshot()
	s.begin(g.n)
	s.visit(int32(v), 0)
	for head := 0; head < len(s.order); head++ {
		u := s.order[head]
		du := s.dist[u]
		if r >= 0 && int(du) == r {
			continue
		}
		for _, w := range csr.Neighbors(int(u)) {
			if s.stamp[w] != s.epoch {
				s.visit(w, du+1)
			}
		}
	}
	return s.order
}

// scratchPool supplies BFSScratch instances to the allocation-free
// convenience wrappers (Ball, Sphere, Dist, ...) so that callers without a
// per-worker scratch still avoid per-call map and array allocations.
var scratchPool = sync.Pool{New: func() any { return &BFSScratch{} }}
