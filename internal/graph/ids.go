package graph

import (
	"math/rand"
	"sort"
)

// The LOCAL model assumes unique identifiers from {1, ..., poly(n)}. The
// helpers below install the identifier regimes used by the experiments:
// sequential (the default), a random permutation of 1..n, and "spread" IDs
// sampled from a polynomially larger range — the latter matters for
// order-invariance experiments (Section 8), where algorithms must not depend
// on numerical ID values, only on their relative order.

// AssignSequentialIDs installs IDs 1..n in index order.
func AssignSequentialIDs(g *Graph) {
	ids := make([]int64, g.N())
	for v := range ids {
		ids[v] = int64(v + 1)
	}
	if err := g.SetIDs(ids); err != nil {
		panic(err)
	}
}

// AssignPermutedIDs installs a uniformly random permutation of 1..n.
func AssignPermutedIDs(g *Graph, rng *rand.Rand) {
	perm := rng.Perm(g.N())
	ids := make([]int64, g.N())
	for v, p := range perm {
		ids[v] = int64(p + 1)
	}
	if err := g.SetIDs(ids); err != nil {
		panic(err)
	}
}

// AssignSpreadIDs installs distinct random IDs from {1, ..., n^3}, the
// canonical poly(n) ID space.
func AssignSpreadIDs(g *Graph, rng *rand.Rand) {
	n := int64(g.N())
	space := n * n * n
	if space < n {
		space = n
	}
	used := make(map[int64]bool, g.N())
	ids := make([]int64, g.N())
	for v := range ids {
		for {
			id := 1 + rng.Int63n(space)
			if !used[id] {
				used[id] = true
				ids[v] = id
				break
			}
		}
	}
	if err := g.SetIDs(ids); err != nil {
		panic(err)
	}
}

// RemapIDsOrderPreserving replaces the graph's IDs by new distinct values
// with the same relative order (the i-th smallest ID stays i-th smallest),
// using values spread pseudo-randomly across {1, ..., 1000*n}. Used to test
// order invariance: an order-invariant algorithm must produce identical
// output before and after remapping.
func RemapIDsOrderPreserving(g *Graph, rng *rand.Rand) {
	n := g.N()
	// Draw n distinct values and sort them; assign by rank of old ID.
	space := int64(1000 * n)
	if space < int64(n) {
		space = int64(n)
	}
	used := make(map[int64]bool, n)
	vals := make([]int64, 0, n)
	for len(vals) < n {
		v := 1 + rng.Int63n(space)
		if !used[v] {
			used[v] = true
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	// Rank the old IDs.
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return g.ID(order[i]) < g.ID(order[j]) })
	ids := make([]int64, n)
	for rank, v := range order {
		ids[v] = vals[rank]
	}
	if err := g.SetIDs(ids); err != nil {
		panic(err)
	}
}
