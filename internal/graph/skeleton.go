package graph

// Skeleton is a sparse connected overlay used by the bandwidth-frugal
// engine (local.RunFrugal): a ρ-dominating set of cluster centers, a BFS
// tree of depth <= ρ inside every cluster, and one representative edge per
// adjacent cluster pair. Following Bitton–Emek–Izumi–Kutten ("Message
// Reduction in the LOCAL Model is a Free Lunch"), any LOCAL protocol can be
// simulated by aggregating each round's traffic along such a skeleton:
// intra-cluster messages ride the tree through the center, inter-cluster
// bundles cross the single representative edge, and the total edge count —
// TreeEdges + CrossEdges — is o(m) on dense graphs while the round overhead
// stays a constant 2ρ+1.
//
// All arrays are indexed by node. The construction is deterministic for a
// given graph (centers are elected greedily by node index), so every worker
// count and every rebuild sees the same skeleton.
type Skeleton struct {
	// Rho is the cluster radius ρ: every node is within distance ρ of its
	// cluster's center.
	Rho int
	// Centers lists the elected center node of each cluster, in cluster
	// order. Centers are pairwise more than ρ apart (greedy maximality).
	Centers []int32
	// Cluster assigns every node its cluster index (Voronoi cell of the
	// nearest center, ties broken by center election order).
	Cluster []int32
	// Parent is the BFS-tree parent of each node, pointing one hop toward
	// its center; -1 at centers (and in an empty graph).
	Parent []int32
	// Depth is each node's distance to its center along the tree (<= ρ).
	Depth []int32
	// TreeEdges counts the intra-cluster tree edges (= n - len(Centers) on
	// a connected graph; isolated nodes are their own centers).
	TreeEdges int
	// CrossEdges counts the representative inter-cluster edges: one per
	// unordered pair of adjacent clusters.
	CrossEdges int
}

// Edges returns the skeleton's total edge count (tree + representative
// cross edges) — the o(m) sparsity the frugal engine's traffic rides on.
func (sk *Skeleton) Edges() int { return sk.TreeEdges + sk.CrossEdges }

// BuildSkeleton constructs the radius-ρ skeleton of g. ρ < 1 clamps to 1.
// The scratch may be nil (one is allocated); passing a reused scratch makes
// repeated builds allocation-light. Work is O(n + m) for the Voronoi
// assignment plus O(Σ|ball(c, ρ)|) for the greedy center election.
//
// The construction reuses the bounded-BFS machinery of the view engine:
// centers are elected greedily in node-index order (a node becomes a center
// iff no earlier center covers it within ρ, checked by BFSWithin), then a
// multi-source BFS seeded with all centers — the same idiom as the growth
// package's Voronoi assignment — grows the cluster trees, first discoverer
// winning ties.
func BuildSkeleton(g *Graph, rho int, s *BFSScratch) *Skeleton {
	if rho < 1 {
		rho = 1
	}
	n := g.N()
	sk := &Skeleton{
		Rho:     rho,
		Cluster: make([]int32, n),
		Parent:  make([]int32, n),
		Depth:   make([]int32, n),
	}
	for v := range sk.Cluster {
		sk.Cluster[v] = -1
		sk.Parent[v] = -1
	}
	if n == 0 {
		return sk
	}
	if s == nil {
		s = NewBFSScratch()
	}

	// Greedy ρ-dominating set in node-index order: deterministic, maximal
	// (every node is covered), and independent (no center covers another,
	// so centers are pairwise > ρ apart).
	covered := make([]bool, n)
	for v := 0; v < n; v++ {
		if covered[v] {
			continue
		}
		sk.Centers = append(sk.Centers, int32(v))
		for _, u := range g.BFSWithin(v, rho, s) {
			covered[u] = true
		}
	}

	// Multi-source Voronoi BFS from all centers at once: each node joins
	// the cluster of the nearest center (first discoverer wins — seeds are
	// enqueued in center-election order, so the assignment is
	// deterministic), recording its tree parent and depth. Every node is
	// within ρ of some center, so every node is assigned with Depth <= ρ.
	queue := make([]int32, 0, n)
	for ci, c := range sk.Centers {
		sk.Cluster[c] = int32(ci)
		queue = append(queue, c)
	}
	csr := g.Snapshot()
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range csr.Neighbors(int(u)) {
			if sk.Cluster[w] != -1 {
				continue
			}
			sk.Cluster[w] = sk.Cluster[u]
			sk.Parent[w] = u
			sk.Depth[w] = sk.Depth[u] + 1
			sk.TreeEdges++
			queue = append(queue, w)
		}
	}

	// One representative edge per unordered pair of adjacent clusters.
	seen := make(map[int64]struct{})
	for v := 0; v < n; v++ {
		cv := sk.Cluster[v]
		for _, w := range csr.Neighbors(v) {
			cw := sk.Cluster[w]
			if cw == cv || int32(v) > w {
				continue
			}
			a, b := cv, cw
			if a > b {
				a, b = b, a
			}
			key := int64(a)<<32 | int64(b)
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				sk.CrossEdges++
			}
		}
	}
	return sk
}
