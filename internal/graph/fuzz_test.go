package graph

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadEdgeList pins the parser's two contracts: it never panics, whatever
// the input, and every rejection is a typed ErrParse; any input it accepts
// must round-trip exactly through WriteEdgeList. The seed corpus runs as part
// of the normal test suite; `go test -fuzz=FuzzReadEdgeList ./internal/graph`
// explores further.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("n 4\ne 0 1\ne 1 2\ne 2 3\n"))
	f.Add([]byte("# comment\n\nn 3\nid 0 7\nid 1 5\nid 2 9\ne 0 1\n"))
	f.Add([]byte(""))
	f.Add([]byte("n"))
	f.Add([]byte("n -1"))
	f.Add([]byte("n 99999999999999999999"))
	f.Add([]byte("e 0 1\nn 2\n"))
	f.Add([]byte("n 2\nn 2\n"))
	f.Add([]byte("n 2\ne 0 0\n"))
	f.Add([]byte("n 2\ne 0 1\ne 0 1\n"))
	f.Add([]byte("n 2\ne 0 5\n"))
	f.Add([]byte("n 2\nid 0 3\n"))
	f.Add([]byte("n 2\nid 0 3\nid 1 3\n"))
	f.Add([]byte("n 2\nid 0 0\nid 1 1\n"))
	f.Add([]byte("n 3\nx 1 2\n"))
	f.Add([]byte("n 1073741824\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrParse) {
				t.Fatalf("rejection is not an ErrParse: %v", err)
			}
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-parse of written graph failed: %v", err)
		}
		if !Equal(g, g2) {
			t.Fatalf("round trip changed the graph: %v vs %v", g, g2)
		}
	})
}
