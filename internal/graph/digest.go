package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Digest returns a hex SHA-256 fingerprint of the graph's full identity:
// node count, per-index identifiers, and the edge list in insertion order.
// Two graphs have equal digests iff Equal would report them identical, so
// the digest is a stable cache key for any artifact derived from the graph
// (snapshots, encoded advice, compiled decoder tables). The serving layer's
// cache-key contract in DESIGN.md builds on exactly this guarantee.
func (g *Graph) Digest() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(g.n))
	for _, id := range g.ids {
		writeInt(id)
	}
	writeInt(int64(len(g.edges)))
	for _, e := range g.edges {
		writeInt(int64(e.U))
		writeInt(int64(e.V))
	}
	return hex.EncodeToString(h.Sum(nil))
}
