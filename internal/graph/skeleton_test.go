package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// skeletonGraphs is the family sweep the skeleton properties are checked
// over: the same spread of shapes as the engine-equivalence tests, plus
// degenerate cases (empty graph, isolated nodes).
func skeletonGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	reg, err := RandomRegular(64, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"cycle":    Cycle(40),
		"path":     Path(23),
		"grid":     Grid2D(8, 9),
		"torus":    Torus2D(5, 7),
		"tree":     CompleteBinaryTree(5),
		"star":     Star(9),
		"regular":  reg,
		"gnp":      RandomGNP(48, 0.1, rng),
		"isolated": New(5),
		"empty":    New(0),
	}
}

// TestBuildSkeletonInvariants checks the structural contract of the
// skeleton on every family and several radii: clusters partition the nodes,
// every node sits within ρ of its own center along real tree edges, centers
// are pairwise more than ρ apart, and the edge counts match the arrays.
func TestBuildSkeletonInvariants(t *testing.T) {
	s := NewBFSScratch()
	for name, g := range skeletonGraphs(t) {
		for _, rho := range []int{1, 2, 3} {
			sk := BuildSkeleton(g, rho, s)
			n := g.N()
			if len(sk.Cluster) != n || len(sk.Parent) != n || len(sk.Depth) != n {
				t.Fatalf("%s ρ=%d: array lengths %d/%d/%d, want %d",
					name, rho, len(sk.Cluster), len(sk.Parent), len(sk.Depth), n)
			}
			treeEdges := 0
			for v := 0; v < n; v++ {
				c := sk.Cluster[v]
				if c < 0 || int(c) >= len(sk.Centers) {
					t.Fatalf("%s ρ=%d: node %d unassigned (cluster %d)", name, rho, v, c)
				}
				if sk.Depth[v] > int32(rho) {
					t.Fatalf("%s ρ=%d: node %d depth %d exceeds ρ", name, rho, v, sk.Depth[v])
				}
				if p := sk.Parent[v]; p >= 0 {
					treeEdges++
					if sk.Cluster[p] != c {
						t.Fatalf("%s ρ=%d: node %d parent %d in a different cluster", name, rho, v, p)
					}
					if sk.Depth[p] != sk.Depth[v]-1 {
						t.Fatalf("%s ρ=%d: node %d depth %d but parent depth %d",
							name, rho, v, sk.Depth[v], sk.Depth[p])
					}
					real := false
					for _, w := range g.Neighbors(v) {
						if int32(w) == p {
							real = true
						}
					}
					if !real {
						t.Fatalf("%s ρ=%d: tree edge %d->%d is not a graph edge", name, rho, v, p)
					}
				} else if int(sk.Centers[c]) != v {
					t.Fatalf("%s ρ=%d: non-center node %d has no parent", name, rho, v)
				}
				// Walking parents reaches the center in exactly Depth hops.
				x, hops := v, 0
				for sk.Parent[x] >= 0 {
					x = int(sk.Parent[x])
					hops++
				}
				if x != int(sk.Centers[c]) || hops != int(sk.Depth[v]) {
					t.Fatalf("%s ρ=%d: node %d parent walk ends at %d after %d hops (center %d, depth %d)",
						name, rho, v, x, hops, sk.Centers[c], sk.Depth[v])
				}
			}
			if treeEdges != sk.TreeEdges {
				t.Fatalf("%s ρ=%d: TreeEdges %d, counted %d", name, rho, sk.TreeEdges, treeEdges)
			}
			// Centers are pairwise more than ρ apart (greedy independence).
			for i, a := range sk.Centers {
				ball := g.BFSWithin(int(a), rho, s)
				for _, u := range ball {
					for j, b := range sk.Centers {
						if j != i && u == b {
							t.Fatalf("%s ρ=%d: centers %d and %d within distance ρ", name, rho, a, b)
						}
					}
				}
			}
		}
	}
}

// TestBuildSkeletonDeterministic pins that rebuilds (with fresh and reused
// scratch) produce identical skeletons — the frugal engine's accounting
// depends on this.
func TestBuildSkeletonDeterministic(t *testing.T) {
	s := NewBFSScratch()
	for name, g := range skeletonGraphs(t) {
		a := BuildSkeleton(g, 2, s)
		b := BuildSkeleton(g, 2, nil)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: skeleton differs between builds:\n%+v\nvs\n%+v", name, a, b)
		}
	}
}

// TestSkeletonSparsity checks the point of the construction: on the dense
// families the skeleton has strictly fewer edges than the graph, and cross
// edges are bounded by cluster-pair adjacency, not by m.
func TestSkeletonSparsity(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"grid", Grid2D(16, 16)},
		{"torus", Torus2D(12, 12)},
	} {
		g := tc.g
		sk := BuildSkeleton(g, 2, nil)
		if sk.Edges() >= g.M() {
			t.Errorf("%s: skeleton has %d edges, graph has %d — no sparsification", tc.name, sk.Edges(), g.M())
		}
		c := len(sk.Centers)
		if sk.CrossEdges > c*(c-1)/2 {
			t.Errorf("%s: %d cross edges exceed the %d cluster pairs", tc.name, sk.CrossEdges, c*(c-1)/2)
		}
	}
}
