// Package graph provides the simple undirected graphs on which the LOCAL
// model simulator and all advice schemas operate, together with the
// generators and graph algorithms used by the experiments.
//
// Nodes are indexed 0..n-1. Separately from the index, every node carries a
// unique identifier (ID) from {1, ..., poly(n)}, as in the LOCAL model; advice
// schemas and algorithms may depend on IDs but never on indices. Edges are
// identified by an edge index 0..m-1 and are undirected.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Edge is an undirected edge between node indices U and V with U < V.
type Edge struct {
	U, V int
}

// Graph is a simple undirected graph. Construct with New and AddEdge; a
// finished graph is immutable by convention (algorithms never mutate it).
type Graph struct {
	n     int
	ids   []int64 // unique identifiers, one per node
	adj   [][]int // adjacency lists of neighbor node indices
	inc   [][]int // incident edge indices, aligned with adj
	edges []Edge

	// byIDs caches the id -> node index map, built on first NodeByID; the
	// view engine constructs thousands of short-lived subgraphs whose IDs
	// are never looked up, so the map must not be paid for eagerly.
	byIDs atomic.Pointer[map[int64]int]

	// snap caches the CSR adjacency snapshot (see Snapshot); any mutation
	// of the adjacency structure stores nil to invalidate it.
	snap atomic.Pointer[CSR]
}

// New returns an empty graph with n nodes and sequential IDs 1..n.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	g := &Graph{
		n:   n,
		ids: make([]int64, n),
		adj: make([][]int, n),
		inc: make([][]int, n),
	}
	for v := 0; v < n; v++ {
		g.ids[v] = int64(v + 1)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u, v} and returns its edge index.
// It returns an error on loops, duplicate edges, or out-of-range endpoints.
func (g *Graph) AddEdge(u, v int) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, fmt.Errorf("%w: edge {%d,%d} out of range [0,%d)", ErrBadEdge, u, v, g.n)
	}
	if u == v {
		return 0, fmt.Errorf("%w: loop at node %d", ErrBadEdge, u)
	}
	if g.HasEdge(u, v) {
		return 0, fmt.Errorf("%w: duplicate edge {%d,%d}", ErrBadEdge, u, v)
	}
	if u > v {
		u, v = v, u
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v})
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.inc[u] = append(g.inc[u], idx)
	g.inc[v] = append(g.inc[v], idx)
	g.snap.Store(nil)
	return idx, nil
}

// NewFromEdges assembles a graph in one pass from node IDs and a complete
// edge list, preallocating the adjacency storage exactly (two backing arrays
// shared by all nodes). It is the bulk constructor of the view engine's hot
// path. The ids slice is copied; the edges slice is taken over by the graph
// and must not be modified afterwards. Edges must satisfy U < V with both
// endpoints in range, and the edge list must describe a simple graph (no
// duplicates); endpoint violations panic, duplicates are the caller's
// responsibility (Validate detects them). IDs must be positive; duplicate
// IDs are detected lazily, on the first NodeByID lookup.
//
// Adjacency order matches what repeated AddEdge calls in the same edge order
// would produce, so the two construction paths are interchangeable.
func NewFromEdges(ids []int64, edges []Edge) *Graph {
	n := len(ids)
	for v, id := range ids {
		if id <= 0 {
			panic(fmt.Sprintf("graph: non-positive ID %d for node %d", id, v))
		}
	}
	deg := make([]int, n)
	for _, e := range edges {
		if e.U < 0 || e.V >= n || e.U >= e.V {
			panic(fmt.Sprintf("graph: bad edge {%d,%d} for %d nodes", e.U, e.V, n))
		}
		deg[e.U]++
		deg[e.V]++
	}
	adjBacking := make([]int, 2*len(edges))
	incBacking := make([]int, 2*len(edges))
	adj := make([][]int, n)
	inc := make([][]int, n)
	off := 0
	for v := 0; v < n; v++ {
		adj[v] = adjBacking[off : off : off+deg[v]]
		inc[v] = incBacking[off : off : off+deg[v]]
		off += deg[v]
	}
	for i, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
		inc[e.U] = append(inc[e.U], i)
		inc[e.V] = append(inc[e.V], i)
	}
	return &Graph{
		n:     n,
		ids:   append([]int64(nil), ids...),
		adj:   adj,
		inc:   inc,
		edges: edges,
	}
}

// MustAddEdge is AddEdge that panics on error; for generators and tests.
func (g *Graph) MustAddEdge(u, v int) int {
	idx, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return idx
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	// Scan the shorter list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the neighbor indices of v. The returned slice must not
// be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// IncidentEdges returns the edge indices incident to v, aligned with
// Neighbors(v): IncidentEdges(v)[i] is the edge to Neighbors(v)[i]. The
// returned slice must not be modified.
func (g *Graph) IncidentEdges(v int) []int { return g.inc[v] }

// Edge returns the endpoints of edge index e.
func (g *Graph) Edge(e int) Edge { return g.edges[e] }

// Edges returns all edges. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeIndex returns the index of edge {u, v}, or -1 if absent.
func (g *Graph) EdgeIndex(u, v int) int {
	for i, e := range g.inc[u] {
		if g.adj[u][i] == v {
			return e
		}
	}
	return -1
}

// Other returns the endpoint of edge e that is not v.
func (g *Graph) Other(e, v int) int {
	ed := g.edges[e]
	if ed.U == v {
		return ed.V
	}
	if ed.V == v {
		return ed.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", v, e))
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns Δ, the maximum degree (0 for the empty graph). When a
// CSR snapshot is cached the precomputed value is returned; callers in hot
// loops should take a Snapshot first so every MaxDegree call is O(1).
func (g *Graph) MaxDegree() int {
	if c := g.snap.Load(); c != nil {
		return c.maxDeg
	}
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// MinDegree returns the minimum degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := len(g.adj[0])
	for v := 1; v < g.n; v++ {
		if len(g.adj[v]) < d {
			d = len(g.adj[v])
		}
	}
	return d
}

// IsRegular reports whether all nodes have the same degree.
func (g *Graph) IsRegular() bool { return g.n == 0 || g.MaxDegree() == g.MinDegree() }

// AllDegreesEven reports whether every node has even degree.
func (g *Graph) AllDegreesEven() bool {
	for v := 0; v < g.n; v++ {
		if len(g.adj[v])%2 != 0 {
			return false
		}
	}
	return true
}

// ID returns the unique identifier of node v.
func (g *Graph) ID(v int) int64 { return g.ids[v] }

// NodeByID returns the node index carrying the identifier id, or -1. The
// first call builds the lookup map (panicking on duplicate IDs); concurrent
// first calls may each build it, which is safe because ids are immutable.
func (g *Graph) NodeByID(id int64) int {
	m := g.byIDs.Load()
	if m == nil {
		idx := make(map[int64]int, g.n)
		for v, nid := range g.ids {
			if prev, dup := idx[nid]; dup {
				panic(fmt.Sprintf("graph: duplicate ID %d on nodes %d and %d", nid, prev, v))
			}
			idx[nid] = v
		}
		m = &idx
		g.byIDs.Store(m)
	}
	if v, ok := (*m)[id]; ok {
		return v
	}
	return -1
}

// SetIDs installs the given unique identifiers (one per node). It returns an
// error if the slice has the wrong length or contains duplicates or
// non-positive values.
func (g *Graph) SetIDs(ids []int64) error {
	if len(ids) != g.n {
		return fmt.Errorf("%w: got %d IDs for %d nodes", ErrBadID, len(ids), g.n)
	}
	seen := make(map[int64]bool, len(ids))
	for v, id := range ids {
		if id <= 0 {
			return fmt.Errorf("%w: non-positive ID %d for node %d", ErrBadID, id, v)
		}
		if seen[id] {
			return fmt.Errorf("%w: duplicate ID %d", ErrBadID, id)
		}
		seen[id] = true
	}
	g.ids = append([]int64(nil), ids...)
	g.byIDs.Store(nil)
	return nil
}

// SortAdjacencyByID orders every adjacency list (and the aligned incident
// edge list) by the neighbor's identifier. Several constructions in the
// paper fix "an arbitrary consistent order" of a node's edges; sorting by ID
// makes that order deterministic and ID-dependent only.
func (g *Graph) SortAdjacencyByID() {
	for v := 0; v < g.n; v++ {
		idx := make([]int, len(g.adj[v]))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return g.ids[g.adj[v][idx[a]]] < g.ids[g.adj[v][idx[b]]]
		})
		adj := make([]int, len(idx))
		inc := make([]int, len(idx))
		for i, j := range idx {
			adj[i] = g.adj[v][j]
			inc[i] = g.inc[v][j]
		}
		g.adj[v] = adj
		g.inc[v] = inc
	}
	g.snap.Store(nil)
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	return NewFromEdges(g.ids, append([]Edge(nil), g.edges...))
}

// Validate checks internal consistency (used by tests and after generators).
func (g *Graph) Validate() error {
	if len(g.ids) != g.n || len(g.adj) != g.n || len(g.inc) != g.n {
		return fmt.Errorf("graph: inconsistent sizes")
	}
	degSum := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) != len(g.inc[v]) {
			return fmt.Errorf("graph: node %d adj/inc mismatch", v)
		}
		degSum += len(g.adj[v])
		for i, w := range g.adj[v] {
			e := g.edges[g.inc[v][i]]
			if !(e.U == v && e.V == w || e.U == w && e.V == v) {
				return fmt.Errorf("graph: node %d incident edge %d does not match neighbor %d", v, g.inc[v][i], w)
			}
		}
	}
	if degSum != 2*len(g.edges) {
		return fmt.Errorf("graph: degree sum %d != 2m = %d", degSum, 2*len(g.edges))
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, Δ=%d)", g.n, g.M(), g.MaxDegree())
}
