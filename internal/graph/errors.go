package graph

import "errors"

// Typed errors of the graph layer. Constructors and the edge-list parser
// wrap these sentinels so callers (the locad CLI, the fault experiments)
// can classify failures with errors.Is instead of string matching.
var (
	// ErrBadEdge tags rejected edge insertions: out-of-range endpoints,
	// loops, and duplicate edges.
	ErrBadEdge = errors.New("graph: bad edge")

	// ErrBadID tags rejected identifier assignments: wrong count,
	// non-positive, or duplicate IDs.
	ErrBadID = errors.New("graph: bad id")

	// ErrParse tags malformed edge-list input, always with a line number in
	// the message.
	ErrParse = errors.New("graph: parse error")

	// ErrBadSize tags generator calls whose size parameters are outside the
	// family's domain (e.g. a 2-node cycle).
	ErrBadSize = errors.New("graph: bad generator size")
)
