package edgecolor

import (
	"math/rand"
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/orient"
)

func TestEdgeColoringPowersOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	tests := []struct {
		name  string
		delta int
		g     func() *graph.Graph
	}{
		{"delta2 cycle", 2, func() *graph.Graph { return graph.Cycle(60) }},
		{"delta4 torus", 4, func() *graph.Graph { return graph.Torus2D(4, 10) }},
		{"delta4 random", 4, func() *graph.Graph {
			g, err := graph.RandomBipartiteRegular(24, 4, rng)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"delta8 random", 8, func() *graph.Graph {
			g, err := graph.RandomBipartiteRegular(30, 8, rng)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := tt.g()
			s := New(tt.delta)
			if tt.delta >= 8 {
				// Dense graphs need sparser marks (larger decode radius).
				s.OrientParams = orient.Params{MarkSpacing: 20, MarkWindow: 20}
			}
			va, err := s.EncodeVar(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			sol, stats, err := s.DecodeVar(g, va, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Verify(lcl.EdgeColoring{K: tt.delta}, g, sol); err != nil {
				t.Fatal(err)
			}
			// Every class must be a perfect matching on a regular graph:
			// each node sees each color exactly once.
			for v := 0; v < g.N(); v++ {
				seen := map[int]bool{}
				for _, e := range g.IncidentEdges(v) {
					seen[sol.Edge[e]] = true
				}
				if len(seen) != tt.delta {
					t.Fatalf("node %d sees %d colors, want %d", v, len(seen), tt.delta)
				}
			}
			if stats.Rounds <= 0 {
				t.Error("no rounds accounted")
			}
		})
	}
}

func TestEdgeColoringRejectsBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// Non-power-of-two Delta.
	g6, err := graph.RandomBipartiteRegular(15, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(6).EncodeVar(g6, nil); err == nil {
		t.Error("Delta=6 accepted")
	}
	// Non-bipartite.
	if _, err := New(2).EncodeVar(graph.Cycle(9), nil); err == nil {
		t.Error("odd cycle accepted")
	}
	// Non-regular.
	if _, err := New(2).EncodeVar(graph.Path(10), nil); err == nil {
		t.Error("path accepted")
	}
	// Wrong Delta for the graph.
	if _, err := New(4).EncodeVar(graph.Cycle(12), nil); err == nil {
		t.Error("Delta mismatch accepted")
	}
}

func TestAdviceTagsSplitCleanly(t *testing.T) {
	g := graph.Torus2D(4, 6)
	s := New(4)
	va, err := s.EncodeVar(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(va) == 0 {
		t.Fatal("no advice produced for Δ=4 torus")
	}
	// Decoding twice must be deterministic.
	sol1, _, err := s.DecodeVar(g, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol2, _, err := s.DecodeVar(g, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	for e := range sol1.Edge {
		if sol1.Edge[e] != sol2.Edge[e] {
			t.Fatal("decoding not deterministic")
		}
	}
}

func TestDecodeRejectsCorruptTaggedAdvice(t *testing.T) {
	g := graph.Torus2D(4, 6)
	s := New(4)
	va, err := s.EncodeVar(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one holder's merged payload.
	for v, payload := range va {
		va[v] = payload.Slice(0, payload.Len()/2)
		break
	}
	if _, _, err := s.DecodeVar(g, va, nil); err == nil {
		t.Error("corrupt tagged advice accepted")
	}
}

func TestDeltaOneTrivial(t *testing.T) {
	// Δ = 1: a perfect matching needs one color and zero levels.
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	s := New(1)
	va, err := s.EncodeVar(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(va) != 0 {
		t.Errorf("Δ=1 produced advice: %v", va)
	}
	sol, _, err := s.DecodeVar(g, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	for e := range sol.Edge {
		if sol.Edge[e] != 1 {
			t.Errorf("edge %d color %d, want 1", e, sol.Edge[e])
		}
	}
}
