// Package edgecolor implements Corollaries 5.9/5.10 of the paper:
// Δ-edge-coloring bipartite Δ-regular graphs when Δ is a power of two, by
// recursively composing the splitting schema of Section 5.
//
// Level ℓ (1 <= ℓ <= log₂ Δ) splits each of the 2^(ℓ-1) current color
// classes — a (Δ/2^(ℓ-1))-regular bipartite subgraph — into a red and a blue
// half using the splitting pipeline. After log₂ Δ levels every class is a
// perfect matching, i.e. one of the Δ edge colors. The advice of all
// (level, class) sub-schemas is merged with the same tagged self-delimiting
// records that Lemma 1 composition uses.
package edgecolor

import (
	"fmt"

	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/orient"
)

// Schema is the recursive-splitting edge-coloring schema.
type Schema struct {
	// Delta is the degree of the target graphs; must be a power of two.
	Delta int
	// CoverRadius parameterizes each level's 2-coloring sub-schema.
	CoverRadius int
	// OrientParams parameterizes each level's orientation sub-schema.
	OrientParams orient.Params
}

var _ core.VarSchema = Schema{}

// New returns a schema with default sub-schema parameters.
func New(delta int) Schema {
	return Schema{Delta: delta, CoverRadius: 6, OrientParams: orient.DefaultParams()}
}

// Name implements core.VarSchema.
func (s Schema) Name() string { return fmt.Sprintf("%d-edge-coloring", s.Delta) }

// Problem implements core.VarSchema.
func (s Schema) Problem() lcl.Problem { return lcl.EdgeColoring{K: s.Delta} }

func (s Schema) levels() int {
	l := 0
	for d := s.Delta; d > 1; d /= 2 {
		l++
	}
	return l
}

// numTags is the number of (level, class) sub-schemas: classes 1..Δ-1 in
// heap numbering (class c at level ℓ has tag 2^(ℓ-1)-1+c).
func (s Schema) numTags() int { return s.Delta - 1 }

func (s Schema) validate(g *graph.Graph) error {
	if s.Delta < 1 || s.Delta&(s.Delta-1) != 0 {
		return fmt.Errorf("edgecolor: Delta = %d is not a power of two", s.Delta)
	}
	if !g.IsRegular() || g.MaxDegree() != s.Delta {
		return fmt.Errorf("edgecolor: graph is not %d-regular (Δ=%d, min=%d)", s.Delta, g.MaxDegree(), g.MinDegree())
	}
	if _, ok := g.Bipartition(); !ok {
		return fmt.Errorf("edgecolor: graph is not bipartite")
	}
	return nil
}

// classSubgraph builds the subgraph of g on the edges with the given class
// label, preserving node set and IDs, and returns the mapping from subgraph
// edge indices to g edge indices.
func classSubgraph(g *graph.Graph, classes []int, class int) (*graph.Graph, []int) {
	sub := graph.New(g.N())
	ids := make([]int64, g.N())
	for v := range ids {
		ids[v] = g.ID(v)
	}
	if err := sub.SetIDs(ids); err != nil {
		panic(err) // host IDs are unique
	}
	var edgeMap []int
	for e, c := range classes {
		if c != class {
			continue
		}
		ed := g.Edge(e)
		sub.MustAddEdge(ed.U, ed.V)
		edgeMap = append(edgeMap, e)
	}
	return sub, edgeMap
}

func (s Schema) pipeline() *core.Pipeline {
	return orient.NewSplittingPipeline(s.CoverRadius, s.OrientParams)
}

// EncodeVar implements core.VarSchema.
func (s Schema) EncodeVar(g *graph.Graph, _ []*lcl.Solution) (core.VarAdvice, error) {
	if err := s.validate(g); err != nil {
		return nil, err
	}
	merged := make(core.VarAdvice)
	classes := make([]int, g.M()) // all class 0
	p := s.pipeline()
	for level := 1; level <= s.levels(); level++ {
		numClasses := 1 << uint(level-1)
		next := make([]int, g.M())
		for class := 0; class < numClasses; class++ {
			sub, edgeMap := classSubgraph(g, classes, class)
			va, err := p.EncodeVar(sub, nil)
			if err != nil {
				return nil, fmt.Errorf("edgecolor: level %d class %d: %w", level, class, err)
			}
			tag := numClasses - 1 + class
			for v, payload := range va {
				merged[v] = core.AppendTagged(merged[v], tag, payload)
			}
			// Compute the split the decoder will reproduce, to derive the
			// next level's classes.
			sol, _, err := p.DecodeVar(sub, va, nil)
			if err != nil {
				return nil, fmt.Errorf("edgecolor: level %d class %d prover decode: %w", level, class, err)
			}
			for se, ge := range edgeMap {
				next[ge] = 2*class + sol.Edge[se] - 1 // red (1) -> 2c, blue (2) -> 2c+1
			}
		}
		classes = next
	}
	return merged, nil
}

// DecodeVar implements core.VarSchema.
func (s Schema) DecodeVar(g *graph.Graph, merged core.VarAdvice, _ []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	if err := s.validate(g); err != nil {
		return nil, local.Stats{}, err
	}
	// Demultiplex tagged entries once.
	perTag := make([]core.VarAdvice, s.numTags())
	for i := range perTag {
		perTag[i] = make(core.VarAdvice)
	}
	for v, payload := range merged {
		entries, err := core.SplitTagged(payload, s.numTags())
		if err != nil {
			return nil, local.Stats{}, fmt.Errorf("edgecolor: node %d: %w", v, err)
		}
		for tag, entry := range entries {
			perTag[tag][v] = entry
		}
	}
	p := s.pipeline()
	classes := make([]int, g.M())
	var total local.Stats
	for level := 1; level <= s.levels(); level++ {
		numClasses := 1 << uint(level-1)
		next := make([]int, g.M())
		levelRounds := 0
		for class := 0; class < numClasses; class++ {
			sub, edgeMap := classSubgraph(g, classes, class)
			tag := numClasses - 1 + class
			sol, stats, err := p.DecodeVar(sub, perTag[tag], nil)
			if err != nil {
				return nil, total, fmt.Errorf("edgecolor: level %d class %d: %w", level, class, err)
			}
			if stats.Rounds > levelRounds {
				levelRounds = stats.Rounds
			}
			for se, ge := range edgeMap {
				next[ge] = 2*class + sol.Edge[se] - 1
			}
		}
		// Classes of one level decode in parallel (they touch disjoint
		// edges), so a level costs the max over its classes.
		total.Rounds += levelRounds
		classes = next
	}
	sol := lcl.NewSolution(g)
	for e, c := range classes {
		sol.Edge[e] = c + 1
	}
	return sol, total, nil
}
