package main

import (
	"errors"
	"flag"
	"fmt"

	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/harness"
	"localadvice/internal/local"
)

// cmdFault drives the deterministic fault-injection layer from the command
// line. Advice-corruption classes (flip, truncate, reassign) run a schema's
// encode → corrupt → decode → verify pipeline repeatedly and classify each
// repetition; the crash class runs the view-gathering protocol on a message
// engine with a node crashing at a chosen round and reports which outputs
// carry a crash error.
func cmdFault(args []string) error {
	fs := flag.NewFlagSet("fault", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	schema := fs.String("schema", "color3", "advice schema: orient, color3, deltacolor, growth")
	class := fs.String("class", "flip", "fault class: flip, truncate, reassign, crash")
	rate := fs.Float64("rate", 0.05, "per-bit flip rate / per-node truncation rate")
	runs := fs.Int("runs", 5, "repetitions (seeds seed, seed+1, ...)")
	crashNode := fs.Int("node", 0, "crash class: node index that crashes")
	crashRound := fs.Int("round", 1, "crash class: round at which the node crashes")
	radius := fs.Int("radius", 2, "crash class: view radius of the gather protocol")
	engine := fs.String("engine", "message", "crash class: engine (message, goroutine, sequential)")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	applyWorkers(*workers)
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}

	if *class == "crash" {
		return runCrash(g, *crashNode, *crashRound, *radius, *engine, *workers)
	}

	fsc, ok := harness.FaultSchemaByName(*schema)
	if !ok {
		return fmt.Errorf("unknown schema %q (have orient, color3, deltacolor, growth)", *schema)
	}
	var plan func(seed int64) *fault.Plan
	switch *class {
	case "flip":
		plan = func(s int64) *fault.Plan { return &fault.Plan{Seed: s, FlipRate: *rate} }
	case "truncate":
		plan = func(s int64) *fault.Plan { return &fault.Plan{Seed: s, TruncateRate: *rate} }
	case "reassign":
		plan = func(s int64) *fault.Plan { return &fault.Plan{Seed: s, ReassignIDs: true} }
	default:
		return fmt.Errorf("unknown fault class %q (have flip, truncate, reassign, crash)", *class)
	}

	var counts [3]int
	for i := 0; i < *runs; i++ {
		outcome, err := harness.ClassifyFaultRun(fsc, g, plan(*seed+int64(i)))
		if err != nil {
			return err
		}
		counts[outcome]++
		fmt.Printf("run %d (seed %d): %s\n", i+1, *seed+int64(i), outcome)
	}
	fmt.Printf("\n%s on %s under %s faults (rate %.2f): %d/%d valid, %d detected at decode, %d detected at verify, 0 silent invalid\n",
		fsc.Name, g, *class, *rate,
		counts[harness.OutcomeValid], *runs,
		counts[harness.OutcomeDetectedDecode], counts[harness.OutcomeDetectedVerify])
	return nil
}

// runCrash executes the gather protocol with one node crashing at a given
// round and reports per-node outcomes: the crashed node's output slot holds a
// fault.CrashError, every other node still terminates with a view.
func runCrash(gg *graph.Graph, node, round, radius int, engine string, workers int) error {
	if node < 0 || node >= gg.N() {
		return fmt.Errorf("crash node %d out of range [0,%d)", node, gg.N())
	}
	cfg := local.RunConfig{
		Workers: workers,
		Fault:   &fault.Plan{CrashNode: node, CrashRound: round},
	}
	decide := func(view *local.View) any { return view.G.N()*1_000_000 + view.G.M() }
	protocol := &local.GatherProtocol{Radius: radius, Decide: decide}

	var outputs []any
	var stats local.Stats
	var err error
	switch engine {
	case "message":
		outputs, stats, err = local.RunMessageConfig(gg, protocol, nil, cfg)
	case "goroutine":
		outputs, stats, err = local.RunGoroutineConfig(gg, protocol, nil, cfg)
	case "sequential":
		outputs, stats, err = local.RunSequentialConfig(gg, protocol, nil, cfg)
	default:
		return fmt.Errorf("unknown engine %q for crash faults (have message, goroutine, sequential)", engine)
	}
	if err != nil {
		return err
	}
	crashed, completed := 0, 0
	for _, out := range outputs {
		if e, ok := out.(error); ok && errors.Is(e, fault.ErrCrashed) {
			crashed++
		} else {
			completed++
		}
	}
	fmt.Printf("%s engine=%s radius=%d: node %d crashed at round %d\n", gg, engine, radius, node, round)
	fmt.Printf("  rounds: %d, messages: %d\n", stats.Rounds, stats.Messages)
	fmt.Printf("  outputs: %d completed, %d crashed (crash surfaces as a typed error, not a panic)\n", completed, crashed)
	if crashed != 1 {
		return fmt.Errorf("expected exactly 1 crashed output, got %d", crashed)
	}
	return nil
}
