package main

import (
	"flag"
	"fmt"
	"os"

	"localadvice/internal/persist"
)

// cmdStore administers a persistent artifact store directory (the -store-dir
// of `locad serve`) offline: list its records, verify their integrity, and
// garbage-collect to a size budget. The server never needs these — corrupt
// records self-heal on the serving path — but operators do.
func cmdStore(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("store: missing verb (have ls, gc, verify)")
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("store "+verb, flag.ContinueOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	maxMB := fs.Int64("max-mb", 64, "gc: size budget in MiB; oldest records beyond it are evicted")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("store %s: -dir is required", verb)
	}
	st, err := persist.Open(*dir, nil)
	if err != nil {
		return err
	}
	switch verb {
	case "ls":
		recs, err := st.List()
		if err != nil {
			return err
		}
		var total int64
		for _, r := range recs {
			if r.Err != nil {
				fmt.Printf("%-20s CORRUPT  %v\n", r.File, r.Err)
				continue
			}
			fmt.Printf("%-20.20s %-6s %8d B  %s  %s\n",
				r.File, r.Kind, r.Size, r.ModTime.Format("2006-01-02 15:04:05"), r.Key)
			total += r.Size
		}
		fmt.Printf("%d records, %d bytes\n", len(recs), total)
		return nil
	case "verify":
		total, corrupt, err := st.Verify()
		if err != nil {
			return err
		}
		for _, r := range corrupt {
			fmt.Fprintf(os.Stderr, "corrupt: %s: %v\n", r.File, r.Err)
		}
		fmt.Printf("verified %d records, %d corrupt\n", total, len(corrupt))
		if len(corrupt) > 0 {
			return fmt.Errorf("store verify: %d corrupt records", len(corrupt))
		}
		return nil
	case "gc":
		removed, freed, err := st.GC(*maxMB << 20)
		if err != nil {
			return err
		}
		fmt.Printf("gc: removed %d records, freed %d bytes (budget %d MiB)\n", removed, freed, *maxMB)
		return nil
	default:
		return fmt.Errorf("store: unknown verb %q (have ls, gc, verify)", verb)
	}
}
