package main

import (
	"fmt"
	"strings"
	"testing"
)

// proveString regenerates the proof for the given problem on the graph the
// CLI would build from (kind, n, seed) and formats it as the bit string
// `locad prove` prints — the input format of `locad verifyproof`.
func proveString(t *testing.T, problem, kind string, n int, seed int64, radius int) string {
	t.Helper()
	g, err := makeGraph(kind, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := growthSchema(problem, radius)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := s.Prove(g)
	if err != nil {
		t.Fatalf("Prove(%s on %s): %v", problem, kind, err)
	}
	var sb strings.Builder
	for v := 0; v < g.N(); v++ {
		sb.WriteString(proof[v].String())
	}
	return sb.String()
}

// TestProveVerifyRoundTrip drives proof mode end to end through the CLI:
// `prove` emits a 1-bit-per-node proof and `verifyproof`, given that proof
// string and the same graph flags, must print ACCEPTED. Rejection calls
// os.Exit, so only honest proofs are exercised here; malformed proof
// strings are covered by TestRunErrors.
func TestProveVerifyRoundTrip(t *testing.T) {
	tests := []struct {
		problem string
		kind    string
		n       int
		radius  int
	}{
		{"3-coloring", "cycle", 300, 40},
		{"mis", "cycle", 150, 25},
		{"maximal-matching", "path", 240, 40},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.problem, func(t *testing.T) {
			const seed = int64(1)
			proof := proveString(t, tt.problem, tt.kind, tt.n, seed, tt.radius)
			if len(proof) != tt.n {
				t.Fatalf("proof has %d bits for %d nodes", len(proof), tt.n)
			}
			if strings.Trim(proof, "01") != "" {
				t.Fatalf("proof contains non-bit characters: %q", proof)
			}
			args := []string{"verifyproof",
				"-graph", tt.kind, "-n", fmt.Sprint(tt.n), "-seed", fmt.Sprint(seed),
				"-problem", tt.problem, "-radius", fmt.Sprint(tt.radius),
				"-proof", proof}
			out := captureStdout(t, func() {
				if err := run(args); err != nil {
					t.Fatalf("run(%v): %v", args, err)
				}
			})
			want := fmt.Sprintf("ACCEPTED by all %d nodes", tt.n)
			if !strings.Contains(out, want) {
				t.Errorf("verifyproof output %q does not contain %q", out, want)
			}
		})
	}
}

// TestProveOutput checks the prove subcommand's own report: the printed
// proof string has one bit per node and the built-in verifier accepts it.
func TestProveOutput(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"prove", "-graph", "cycle", "-n", "150", "-problem", "mis", "-radius", "25"}); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(out, "verifier: accepted=true") {
		t.Errorf("prove did not self-verify:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var bits string
	for _, l := range lines {
		if strings.Trim(l, "01") == "" && len(l) > 0 {
			bits = l
		}
	}
	if len(bits) != 150 {
		t.Errorf("printed proof string has %d bits, want 150", len(bits))
	}
}
