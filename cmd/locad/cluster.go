package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"localadvice/internal/cluster"
	"localadvice/internal/server"
)

// shardProc is one spawned shard child.
type shardProc struct {
	name string
	cmd  *exec.Cmd
	url  string
}

// cmdCluster runs a local shard fleet: N `locad serve -role shard` child
// processes on ephemeral ports, fronted by an internal/cluster router on
// -addr. SIGTERM/SIGINT drains the router, then terminates the shards.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "router listen address (use :0 for an ephemeral port)")
	shards := fs.Int("shards", 2, "number of shard processes to spawn")
	replicas := fs.Int("replicas", 1, "hot-artifact replica count K")
	hotThreshold := fs.Int("hot-threshold", 8, "cached reads of one key before its artifacts replicate")
	healthInterval := fs.Duration("health-interval", time.Second, "shard health-check period")
	cacheMB := fs.Int("cache-mb", 64, "per-shard artifact cache budget in MiB")
	maxInflight := fs.Int("max-inflight", 0, "per-shard in-flight bound (0 = 4 x GOMAXPROCS)")
	maxNodes := fs.Int("max-nodes", 200_000, "largest accepted graph (nodes)")
	storeRoot := fs.String("store-root", "", "shared persistence root; shard i stores under <root>/shard<i> (empty = no persistence)")
	noFallback := fs.Bool("no-fallback", false, "answer 503 shard_down instead of computing locally when no shard is healthy")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	applyWorkers(*workers)
	if *shards < 1 {
		return fmt.Errorf("cluster needs at least 1 shard, got %d", *shards)
	}

	exe, err := os.Executable()
	if err != nil {
		return err
	}

	// The defer covers every exit path — clean shutdown, router bind
	// failure, mid-spawn failure — so no shard outlives the cluster
	// process. SIGTERM goes out to all shards first, then each is reaped
	// within a shared grace budget and SIGKILLed if it ignores the TERM.
	procs := make([]*shardProc, 0, *shards)
	defer func() {
		for _, p := range procs {
			if p.cmd.Process != nil {
				p.cmd.Process.Signal(syscall.SIGTERM)
			}
		}
		deadline := time.Now().Add(*grace)
		for _, p := range procs {
			waitOrKill(p.cmd, time.Until(deadline))
		}
	}()

	fleet := make([]cluster.Shard, 0, *shards)
	for i := 0; i < *shards; i++ {
		name := fmt.Sprintf("shard%d", i)
		shardArgs := []string{
			"serve", "-addr", "127.0.0.1:0", "-role", "shard",
			"-cache-mb", fmt.Sprint(*cacheMB),
			"-max-inflight", fmt.Sprint(*maxInflight),
			"-max-nodes", fmt.Sprint(*maxNodes),
		}
		if *storeRoot != "" {
			shardArgs = append(shardArgs, "-store-dir", filepath.Join(*storeRoot, name))
		}
		p, err := spawnShard(exe, name, shardArgs)
		if err != nil {
			return fmt.Errorf("spawning %s: %w", name, err)
		}
		procs = append(procs, p)
		// The cluster smoke parses these lines to learn shard PIDs (it kills
		// one to exercise degradation).
		fmt.Printf("locad cluster: %s pid %d at %s\n", name, p.cmd.Process.Pid, p.url)
		fleet = append(fleet, cluster.Shard{Name: name, URL: p.url})
	}

	// The router's embedded server is the fallback compute path and the
	// /v1/experiment backend; it never persists (the shards own the stores).
	local, err := server.New(server.Config{
		CacheBytes:  int64(*cacheMB) << 20,
		MaxInflight: *maxInflight,
		MaxNodes:    *maxNodes,
		Role:        "router",
	})
	if err != nil {
		return err
	}
	rt, err := cluster.New(cluster.Config{
		Shards:          fleet,
		Replicas:        *replicas,
		HotThreshold:    *hotThreshold,
		HealthInterval:  *healthInterval,
		DisableFallback: *noFallback,
		Local:           local,
	})
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Scripts and the loadgen cluster sweep poll for this exact line.
	fmt.Printf("locad cluster: router listening on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- rt.Serve(l) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "locad cluster: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := rt.Shutdown(sctx); err != nil {
			return fmt.Errorf("router shutdown: %w", err)
		}
		return <-errc
	}
}

// spawnShard starts one `locad serve` child and waits for its listen line
// to learn the bound address.
func spawnShard(exe, name string, args []string) (*shardProc, error) {
	cmd, addr, err := spawnAwaitLine(exe, args, "locad serve: listening on ", 30*time.Second, false)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &shardProc{name: name, cmd: cmd, url: "http://" + addr}, nil
}

// spawnAwaitLine starts a locad child process and scans its stdout for a
// line with the given prefix, returning the remainder (the bound address).
// The child's stderr passes through; its stdout keeps draining after the
// match so the child never blocks on a full pipe.
//
// With ownGroup the child leads a fresh process group that its own children
// inherit (a spawned `locad cluster` and its shards), so the last-resort
// SIGKILL in terminateProc reaches the whole tree instead of orphaning
// grandchildren. On the error paths here the child is terminated
// gracefully — SIGTERM, a reaping grace period, then SIGKILL — rather than
// the old immediate Kill, which gave a half-started cluster no chance to
// run its own shard-teardown defer.
func spawnAwaitLine(exe string, args []string, prefix string, timeout time.Duration, ownGroup bool) (*exec.Cmd, string, error) {
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	if ownGroup {
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}

	addrCh := make(chan string, 1)
	sc := bufio.NewScanner(stdout)
	go func() {
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), prefix); ok {
				addrCh <- strings.TrimSpace(rest)
				break
			}
		}
		close(addrCh)
		for sc.Scan() {
		}
	}()

	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			terminateProc(cmd, 5*time.Second)
			return nil, "", fmt.Errorf("child exited before printing %q", prefix)
		}
		return cmd, addr, nil
	case <-time.After(timeout):
		terminateProc(cmd, 5*time.Second)
		return nil, "", fmt.Errorf("no %q line within %s", prefix, timeout)
	}
}

// terminateProc ends a spawned child gracefully: SIGTERM (to its process
// group when it leads one, so grandchildren hear it too), a bounded wait
// for the exit, then SIGKILL escalation. Reaps the child; callers must not
// Wait again.
func terminateProc(cmd *exec.Cmd, grace time.Duration) {
	if cmd.Process == nil {
		return
	}
	signalProc(cmd, syscall.SIGTERM)
	waitOrKill(cmd, grace)
}

// waitOrKill reaps a child that has already been told to exit, escalating
// to SIGKILL (group-wide when the child leads a group) if it is still
// running after the grace period.
func waitOrKill(cmd *exec.Cmd, grace time.Duration) {
	if cmd.Process == nil {
		return
	}
	if grace < 0 {
		grace = 0
	}
	done := make(chan struct{})
	go func() {
		cmd.Wait() // a child killed externally reports an error; that's fine
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		signalProc(cmd, syscall.SIGKILL)
		<-done
	}
}

// signalProc signals the child's process group when it was spawned as a
// group leader (falling back to the process if the group signal fails), or
// just the process otherwise.
func signalProc(cmd *exec.Cmd, sig syscall.Signal) {
	if cmd.SysProcAttr != nil && cmd.SysProcAttr.Setpgid {
		if syscall.Kill(-cmd.Process.Pid, sig) == nil {
			return
		}
	}
	cmd.Process.Signal(sig)
}
