package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"localadvice/internal/server"
)

// cmdLoadgen drives a running `locad serve` instance with /v1/decode
// traffic in two phases — cold (per-request cache bypass, the full
// parse/encode/compile/decode pipeline every time) and warm (cache on, the
// steady-state serving path) — and reports throughput and latency
// percentiles for each, plus their ratio. With -json the report is a single
// JSON object (the shape scripts/bench.sh embeds under the "serve" key of
// BENCH_*.json) and includes a /v1/stats scrape from the server.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "address of a running locad serve")
	schema := fs.String("schema", "mis", "advice schema to decode")
	family := fs.String("graph", "cycle", "graph family of the workload")
	n := fs.Int("n", 64, "graph size")
	seed := fs.Int64("seed", 1, "graph seed")
	concurrency := fs.Int("concurrency", 8, "concurrent request loops")
	duration := fs.Duration("duration", 2*time.Second, "wall-clock length of each phase")
	jsonOut := fs.Bool("json", false, "emit the report as JSON on stdout")
	batch := fs.Bool("batch", false, "add a binary /v1/batch phase (warm) to the run")
	batchSize := fs.Int("batch-size", 256, "decode requests per batch frame")
	probe := fs.Bool("probe", false, "send ONE warm decode and report its server-side latency + labels (restart-recovery measurement), then exit")
	probeCold := fs.Bool("probe-cold", false, "with -probe: also measure engine recompute cost and report the recompute/disk-recovery ratio")
	probeIters := fs.Int("probe-iters", 16, "with -probe-cold: flush/reload and recompute cycles to average the ratio over")
	clusterSweep := fs.Bool("cluster", false, "spawn locad cluster fleets and sweep routed /v1/decode throughput across -cluster-shards sizes (ignores -addr)")
	clusterShards := fs.String("cluster-shards", "1,2,4,8", "comma-separated fleet sizes for the -cluster sweep")
	clusterSeeds := fs.Int("cluster-seeds", 16, "distinct graph seeds the cold cluster phase cycles (spreads keys across owners)")
	hotThreshold := fs.Int("hot-threshold", 8, "cluster hot-key replication threshold passed to the spawned fleets")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *clusterSweep {
		counts, err := parseShardCounts(*clusterShards)
		if err != nil {
			return err
		}
		return runClusterSweep(*schema, *family, *n, counts, *clusterSeeds, *concurrency, *duration, *hotThreshold, *jsonOut)
	}

	base := "http://" + *addr
	client := newLoadgenClient()

	if *probe {
		return runProbe(client, base, *schema, *family, *n, *seed, *probeCold, *probeIters)
	}

	type decodeReq struct {
		Schema string `json:"schema"`
		Graph  struct {
			Family string `json:"family"`
			N      int    `json:"n"`
			Seed   int64  `json:"seed"`
		} `json:"graph"`
		Cache bool `json:"cache"`
	}
	makeBody := func(cached bool) []byte {
		var req decodeReq
		req.Schema = *schema
		req.Graph.Family = *family
		req.Graph.N = *n
		req.Graph.Seed = *seed
		req.Cache = cached
		b, _ := json.Marshal(req)
		return b
	}

	// One priming request up front: fail fast on a bad schema/graph/addr
	// instead of reporting a phase full of errors.
	if _, err := postOnce(client, base+"/v1/decode", makeBody(true)); err != nil {
		return fmt.Errorf("priming request: %w", err)
	}

	cold, err := runPhase(client, base+"/v1/decode", makeBody(false), *concurrency, *duration)
	if err != nil {
		return err
	}
	warm, err := runPhase(client, base+"/v1/decode", makeBody(true), *concurrency, *duration)
	if err != nil {
		return err
	}

	ratio := 0.0
	if cold.RPS > 0 {
		ratio = warm.RPS / cold.RPS
	}

	var batchRep *batchReport
	if *batch {
		rep, err := runBatchPhase(client, base, *schema, *family, *n, *seed, *batchSize, *concurrency, *duration)
		if err != nil {
			return err
		}
		batchRep = &rep
	}

	if *jsonOut {
		report := map[string]any{
			"addr":               *addr,
			"schema":             *schema,
			"graph":              map[string]any{"family": *family, "n": *n, "seed": *seed},
			"concurrency":        *concurrency,
			"phase_seconds":      duration.Seconds(),
			"cold":               cold,
			"warm":               warm,
			"warm_over_cold_rps": ratio,
		}
		if batchRep != nil {
			report["batch"] = batchRep
		}
		if stats, err := scrapeStats(client, base); err == nil {
			report["stats"] = stats
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}

	fmt.Printf("loadgen %s schema=%s graph=%s n=%d concurrency=%d phase=%s\n",
		*addr, *schema, *family, *n, *concurrency, *duration)
	for _, p := range []struct {
		name string
		r    phaseReport
	}{{"cold", cold}, {"warm", warm}} {
		fmt.Printf("  %-4s %8.1f req/s  p50 %-10s p95 %-10s p99 %-10s (%d ok, %d errors)\n",
			p.name, p.r.RPS,
			time.Duration(p.r.P50Nanos), time.Duration(p.r.P95Nanos), time.Duration(p.r.P99Nanos),
			p.r.Requests-p.r.Errors, p.r.Errors)
	}
	fmt.Printf("  warm/cold throughput: %.1fx\n", ratio)
	if batchRep != nil {
		fmt.Printf("  batch %8.1f frames/s  %10.0f items/s  (size %d, %d errors)\n",
			batchRep.RPS, batchRep.ItemsPerSecond, batchRep.BatchSize, batchRep.Errors)
	}
	return nil
}

// newLoadgenClient builds the shared benchmark client. The default
// transport keeps only 2 idle connections per host, so at concurrency 8+
// most requests open a fresh TCP connection, piling up TIME_WAIT sockets
// until high-rate runs exhaust ephemeral ports and understate throughput.
// Keeping one idle connection per loop (and skipping gzip, which the server
// never negotiates for these tiny JSON bodies) makes every lane reuse its
// connection.
func newLoadgenClient() *http.Client {
	return &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
			DisableCompression:  true,
		},
	}
}

// batchReport is the phaseReport of a binary /v1/batch phase plus the
// per-item throughput (the ISSUE's >= 100k warm decode req/s target reads
// off ItemsPerSecond).
type batchReport struct {
	phaseReport
	BatchSize      int     `json:"batch_size"`
	ItemsPerSecond float64 `json:"items_per_second"`
}

// runBatchPhase hammers /v1/batch with one pre-encoded binary frame of
// batchSize server-advice decode requests.
func runBatchPhase(client *http.Client, base, schema, family string, n int, seed int64, batchSize, concurrency int, d time.Duration) (batchReport, error) {
	body, err := server.EncodeBatchRequest(schema,
		server.GraphSpec{Family: family, N: n, Seed: seed},
		true, make([]server.BatchItem, batchSize))
	if err != nil {
		return batchReport{}, err
	}
	// Priming request: fail fast and surface in-band item errors.
	resp, err := client.Post(base+"/v1/batch", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return batchReport{}, fmt.Errorf("priming batch: %w", err)
	}
	frame, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return batchReport{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return batchReport{}, fmt.Errorf("priming batch: HTTP %d: %s", resp.StatusCode, frame)
	}
	results, err := server.DecodeBatchResponse(frame)
	if err != nil {
		return batchReport{}, fmt.Errorf("priming batch: %w", err)
	}
	for i, r := range results {
		if r.Err != "" {
			return batchReport{}, fmt.Errorf("priming batch: item %d: %s", i, r.Err)
		}
	}
	phase, err := runPhase(client, base+"/v1/batch", body, concurrency, d)
	if err != nil {
		return batchReport{}, err
	}
	return batchReport{
		phaseReport:    phase,
		BatchSize:      batchSize,
		ItemsPerSecond: phase.RPS * float64(batchSize),
	}, nil
}

// runProbe measures ONE decode the way the restart benchmark needs it: the
// server-side elapsed_nanos of the first warm request after a (re)start —
// the store-load path when serve has a -store-dir — plus, with cold=true, a
// cache-bypassing decode pricing the full recompute pipeline. Labels are
// emitted comma-joined on one line so the smoke test can diff them across a
// restart with grep.
//
// The recovery ratio isolates what persistence actually replaces: on a
// freshly restarted server a warm decode's artifact acquisition is pure
// disk load (the store's load_nanos), and a cache-bypassing decode's is
// pure engine work (engine_compute_nanos — cache:false never touches the
// store, so the two counters don't contaminate each other). A single
// two-record load is dominated by fixed syscall noise, so the probe
// averages: `iters` rounds of /v1/cache/flush + warm decode (each reloads
// every artifact from disk — flush empties the LRU, not the store) and
// `iters` cache-bypassing decodes, then reads the per-artifact mean of
// each side off the server's cumulative counters.
// recompute_over_restart is mean-engine-compute over mean-disk-load; the
// whole-request latencies are reported alongside as context (they share
// graph build + table run + verification, which persistence cannot
// remove).
func runProbe(client *http.Client, base, schema, family string, n int, seed int64, cold bool, iters int) error {
	decodeOnce := func(cached bool) (int64, []int, error) {
		body := fmt.Sprintf(`{"schema":%q,"graph":{"family":%q,"n":%d,"seed":%d},"cache":%v}`,
			schema, family, n, seed, cached)
		resp, err := client.Post(base+"/v1/decode", "application/json", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, nil, fmt.Errorf("decode: HTTP %d: %s", resp.StatusCode, data)
		}
		var dr struct {
			Labels      []int `json:"labels"`
			ElapsedNano int64 `json:"elapsed_nanos"`
		}
		if err := json.Unmarshal(data, &dr); err != nil {
			return 0, nil, err
		}
		return dr.ElapsedNano, dr.Labels, nil
	}

	firstNanos, labels, err := decodeOnce(true)
	if err != nil {
		return err
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprint(l)
	}
	report := map[string]any{
		"schema":             schema,
		"graph":              map[string]any{"family": family, "n": n, "seed": seed},
		"first_decode_nanos": firstNanos,
		"labels":             strings.Join(parts, ","),
	}
	type probeCounters struct {
		EngineComputes uint64 `json:"engine_computes"`
		EngineNanos    int64  `json:"engine_compute_nanos"`
		Store          *struct {
			Hits      uint64 `json:"hits"`
			Misses    uint64 `json:"misses"`
			LoadNanos int64  `json:"load_nanos"`
		} `json:"store"`
	}
	scrape := func() (json.RawMessage, probeCounters, error) {
		raw, err := scrapeStats(client, base)
		var c probeCounters
		if err == nil {
			err = json.Unmarshal(raw, &c)
		}
		return raw, c, err
	}

	if cold {
		if iters < 1 {
			iters = 1
		}
		// Counter baseline: the first decode's loads hit a cold page cache
		// and would skew the rounds; diffing per round against the previous
		// snapshot isolates each round's own per-artifact cost. Both sides
		// then take the best (minimum) round — the same best-of-N reading
		// the bench-regression harness applies to re-timed benchmarks, so
		// a contention spike in the container degrades neither side.
		_, prev, err := scrape()
		if err != nil {
			return err
		}
		// per-artifact cost of this round's store loads or engine computes,
		// folded into the running best.
		bestLoad, bestEngine := 0.0, 0.0
		fold := func(best *float64, nanos int64, count uint64) {
			if nanos > 0 && count > 0 {
				if per := float64(nanos) / float64(count); *best == 0 || per < *best {
					*best = per
				}
			}
		}
		// Reload rounds: each flush empties the LRU (never the store), so
		// the next warm decode pulls every artifact from disk again.
		for i := 0; i < iters; i++ {
			if _, err := postOnce(client, base+"/v1/cache/flush", []byte("{}")); err != nil {
				return err
			}
			if _, _, err := decodeOnce(true); err != nil {
				return err
			}
			_, cur, err := scrape()
			if err != nil {
				return err
			}
			if cur.Store != nil && prev.Store != nil {
				fold(&bestLoad, cur.Store.LoadNanos-prev.Store.LoadNanos,
					(cur.Store.Hits+cur.Store.Misses)-(prev.Store.Hits+prev.Store.Misses))
			}
			prev = cur
		}
		// Recompute rounds: cache:false prices the engine pipeline.
		var recomputeNanos int64
		for i := 0; i < iters; i++ {
			ns, _, err := decodeOnce(false)
			if err != nil {
				return err
			}
			if i == 0 {
				recomputeNanos = ns
			}
			_, cur, err := scrape()
			if err != nil {
				return err
			}
			fold(&bestEngine, cur.EngineNanos-prev.EngineNanos,
				cur.EngineComputes-prev.EngineComputes)
			prev = cur
		}
		report["probe_iters"] = iters
		report["recompute_nanos"] = recomputeNanos

		raw, _, err := scrape()
		if err != nil {
			return err
		}
		report["stats"] = raw
		ratio := 0.0
		if bestLoad > 0 && bestEngine > 0 {
			report["store_load_nanos"] = int64(bestLoad)
			report["engine_compute_nanos"] = int64(bestEngine)
			ratio = bestEngine / bestLoad
		}
		report["recompute_over_restart"] = ratio
	} else if raw, _, err := scrape(); err == nil {
		report["stats"] = raw
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// phaseReport summarizes one loadgen phase.
type phaseReport struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Shed     int     `json:"shed"`
	RPS      float64 `json:"rps"`
	AvgNanos int64   `json:"avg_nanos"`
	P50Nanos int64   `json:"p50_nanos"`
	P95Nanos int64   `json:"p95_nanos"`
	P99Nanos int64   `json:"p99_nanos"`
}

// runPhase hammers url with identical POST bodies from `concurrency` loops
// for the given wall-clock duration. 429 responses are counted as shed, not
// errors: they are the server's bounded pool doing its job.
func runPhase(client *http.Client, url string, body []byte, concurrency int, d time.Duration) (phaseReport, error) {
	return runPhaseBodies(client, url, [][]byte{body}, concurrency, d)
}

// runPhaseBodies is runPhase over a body rotation: each loop cycles through
// the bodies in order. The cluster sweep uses it to spread cold decodes over
// distinct graph seeds, so the routed keys land on different owners instead
// of serializing one shard.
func runPhaseBodies(client *http.Client, url string, bodies [][]byte, concurrency int, d time.Duration) (phaseReport, error) {
	deadline := time.Now().Add(d)
	type lane struct {
		lat    []int64
		errors int
		shed   int
		err    error
	}
	lanes := make([]lane, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(laneID int, ln *lane) {
			defer wg.Done()
			for seq := laneID; time.Now().Before(deadline); seq++ {
				start := time.Now()
				status, err := postOnce(client, url, bodies[seq%len(bodies)])
				if err != nil {
					ln.err = err
					return
				}
				switch {
				case status == http.StatusTooManyRequests:
					ln.shed++
					continue
				case status != http.StatusOK:
					ln.errors++
					continue
				}
				ln.lat = append(ln.lat, time.Since(start).Nanoseconds())
			}
		}(i, &lanes[i])
	}
	wg.Wait()

	var all []int64
	rep := phaseReport{}
	for i := range lanes {
		if lanes[i].err != nil {
			return rep, lanes[i].err
		}
		all = append(all, lanes[i].lat...)
		rep.Errors += lanes[i].errors
		rep.Shed += lanes[i].shed
	}
	rep.Requests = len(all) + rep.Errors
	if len(all) > 0 {
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		var sum int64
		for _, v := range all {
			sum += v
		}
		rep.AvgNanos = sum / int64(len(all))
		rep.P50Nanos = pctl(all, 50)
		rep.P95Nanos = pctl(all, 95)
		rep.P99Nanos = pctl(all, 99)
		if d > 0 {
			// A zero-duration phase must report 0, not +Inf — the JSON
			// report and the bench-regression gate both choke on Inf.
			rep.RPS = float64(len(all)) / d.Seconds()
		}
	}
	return rep, nil
}

// pctl reads the p-th percentile of a sorted sample.
func pctl(sorted []int64, p int) int64 {
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// postOnce sends one JSON POST and returns the HTTP status. The body is
// drained so the client can reuse the connection.
func postOnce(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// scrapeStats fetches /v1/stats as raw JSON for embedding in the report.
func scrapeStats(client *http.Client, base string) (json.RawMessage, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	return json.RawMessage(data), nil
}
