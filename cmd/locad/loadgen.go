package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// cmdLoadgen drives a running `locad serve` instance with /v1/decode
// traffic in two phases — cold (per-request cache bypass, the full
// parse/encode/compile/decode pipeline every time) and warm (cache on, the
// steady-state serving path) — and reports throughput and latency
// percentiles for each, plus their ratio. With -json the report is a single
// JSON object (the shape scripts/bench.sh embeds under the "serve" key of
// BENCH_*.json) and includes a /v1/stats scrape from the server.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "address of a running locad serve")
	schema := fs.String("schema", "mis", "advice schema to decode")
	family := fs.String("graph", "cycle", "graph family of the workload")
	n := fs.Int("n", 64, "graph size")
	seed := fs.Int64("seed", 1, "graph seed")
	concurrency := fs.Int("concurrency", 8, "concurrent request loops")
	duration := fs.Duration("duration", 2*time.Second, "wall-clock length of each phase")
	jsonOut := fs.Bool("json", false, "emit the report as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: 60 * time.Second}

	type decodeReq struct {
		Schema string `json:"schema"`
		Graph  struct {
			Family string `json:"family"`
			N      int    `json:"n"`
			Seed   int64  `json:"seed"`
		} `json:"graph"`
		Cache bool `json:"cache"`
	}
	makeBody := func(cached bool) []byte {
		var req decodeReq
		req.Schema = *schema
		req.Graph.Family = *family
		req.Graph.N = *n
		req.Graph.Seed = *seed
		req.Cache = cached
		b, _ := json.Marshal(req)
		return b
	}

	// One priming request up front: fail fast on a bad schema/graph/addr
	// instead of reporting a phase full of errors.
	if _, err := postOnce(client, base+"/v1/decode", makeBody(true)); err != nil {
		return fmt.Errorf("priming request: %w", err)
	}

	cold, err := runPhase(client, base+"/v1/decode", makeBody(false), *concurrency, *duration)
	if err != nil {
		return err
	}
	warm, err := runPhase(client, base+"/v1/decode", makeBody(true), *concurrency, *duration)
	if err != nil {
		return err
	}

	ratio := 0.0
	if cold.RPS > 0 {
		ratio = warm.RPS / cold.RPS
	}

	if *jsonOut {
		report := map[string]any{
			"addr":               *addr,
			"schema":             *schema,
			"graph":              map[string]any{"family": *family, "n": *n, "seed": *seed},
			"concurrency":        *concurrency,
			"phase_seconds":      duration.Seconds(),
			"cold":               cold,
			"warm":               warm,
			"warm_over_cold_rps": ratio,
		}
		if stats, err := scrapeStats(client, base); err == nil {
			report["stats"] = stats
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}

	fmt.Printf("loadgen %s schema=%s graph=%s n=%d concurrency=%d phase=%s\n",
		*addr, *schema, *family, *n, *concurrency, *duration)
	for _, p := range []struct {
		name string
		r    phaseReport
	}{{"cold", cold}, {"warm", warm}} {
		fmt.Printf("  %-4s %8.1f req/s  p50 %-10s p95 %-10s p99 %-10s (%d ok, %d errors)\n",
			p.name, p.r.RPS,
			time.Duration(p.r.P50Nanos), time.Duration(p.r.P95Nanos), time.Duration(p.r.P99Nanos),
			p.r.Requests-p.r.Errors, p.r.Errors)
	}
	fmt.Printf("  warm/cold throughput: %.1fx\n", ratio)
	return nil
}

// phaseReport summarizes one loadgen phase.
type phaseReport struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Shed     int     `json:"shed"`
	RPS      float64 `json:"rps"`
	AvgNanos int64   `json:"avg_nanos"`
	P50Nanos int64   `json:"p50_nanos"`
	P95Nanos int64   `json:"p95_nanos"`
	P99Nanos int64   `json:"p99_nanos"`
}

// runPhase hammers url with identical POST bodies from `concurrency` loops
// for the given wall-clock duration. 429 responses are counted as shed, not
// errors: they are the server's bounded pool doing its job.
func runPhase(client *http.Client, url string, body []byte, concurrency int, d time.Duration) (phaseReport, error) {
	deadline := time.Now().Add(d)
	type lane struct {
		lat    []int64
		errors int
		shed   int
		err    error
	}
	lanes := make([]lane, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(ln *lane) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				status, err := postOnce(client, url, body)
				if err != nil {
					ln.err = err
					return
				}
				switch {
				case status == http.StatusTooManyRequests:
					ln.shed++
					continue
				case status != http.StatusOK:
					ln.errors++
					continue
				}
				ln.lat = append(ln.lat, time.Since(start).Nanoseconds())
			}
		}(&lanes[i])
	}
	wg.Wait()

	var all []int64
	rep := phaseReport{}
	for i := range lanes {
		if lanes[i].err != nil {
			return rep, lanes[i].err
		}
		all = append(all, lanes[i].lat...)
		rep.Errors += lanes[i].errors
		rep.Shed += lanes[i].shed
	}
	rep.Requests = len(all) + rep.Errors
	if len(all) > 0 {
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		var sum int64
		for _, v := range all {
			sum += v
		}
		rep.AvgNanos = sum / int64(len(all))
		rep.P50Nanos = pctl(all, 50)
		rep.P95Nanos = pctl(all, 95)
		rep.P99Nanos = pctl(all, 99)
		rep.RPS = float64(len(all)) / d.Seconds()
	}
	return rep, nil
}

// pctl reads the p-th percentile of a sorted sample.
func pctl(sorted []int64, p int) int64 {
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// postOnce sends one JSON POST and returns the HTTP status. The body is
// drained so the client can reuse the connection.
func postOnce(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// scrapeStats fetches /v1/stats as raw JSON for embedding in the report.
func scrapeStats(client *http.Client, base string) (json.RawMessage, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	return json.RawMessage(data), nil
}
