package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"localadvice/internal/decomp"
	"localadvice/internal/graph"
	"localadvice/internal/local"
)

// decompPoint is one (graph, workers) measurement of the scheduler-sharding
// comparison: the same flood workload swept with contiguous index shards
// and with the decomposition's low-cut ball shards.
type decompPoint struct {
	Graph            string  `json:"graph"`
	Nodes            int     `json:"nodes"`
	EdgesM           int     `json:"edges"`
	Workers          int     `json:"workers"`
	Balls            int     `json:"balls"`
	CutFraction      float64 `json:"cut_fraction"`
	IndexRoundsPerS  float64 `json:"index_rounds_per_sec"`
	LowcutRoundsPerS float64 `json:"lowcut_rounds_per_sec"`
	Speedup          float64 `json:"speedup"`
	OutputsMatch     bool    `json:"outputs_match"`
}

// decompReport is the machine-readable comparison scripts/bench.sh embeds
// as the "decomp" section and the bench-regression gate enforces.
type decompReport struct {
	Beta   float64       `json:"beta"`
	Seed   int64         `json:"seed"`
	CPUs   int           `json:"cpus"`
	Points []decompPoint `json:"points"`
}

// cmdDecomp computes a low-diameter decomposition and reports it, or (with
// -sched) benchmarks the sharded scheduler with low-cut ball shards against
// contiguous index shards on a flood workload.
func cmdDecomp(args []string) error {
	fs := flag.NewFlagSet("decomp", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	beta := fs.Float64("beta", 0.2, "decomposition rate β (cut fraction ~ O(β), radii ~ O(log n/β))")
	workers := workersFlag(fs)
	sched := fs.Bool("sched", false, "benchmark scheduler sharding: low-cut ball shards vs contiguous index shards")
	graphsList := fs.String("graphs", "grid,torus,gnp", "comma-separated graph families for -sched")
	schedWorkers := fs.String("sched-workers", "2,4,8", "comma-separated scheduler worker counts for -sched")
	reps := fs.Int("reps", 3, "repetitions per -sched point (best wall time wins)")
	jsonOut := fs.Bool("json", false, "emit the -sched comparison as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := applyWorkers(*workers)
	if *sched {
		return runDecompSched(*graphsList, *n, *seed, *beta, *schedWorkers, *reps, *jsonOut)
	}

	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	start := time.Now()
	d, err := decomp.DecomposeWorkers(g, *beta, *seed, w)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := d.Validate(g); err != nil {
		return err
	}
	fmt.Printf("%s beta=%g seed=%d workers=%d\n", g, *beta, *seed, w)
	fmt.Printf("  balls: %d, max shift: %d, max radius: %d, mean radius: %.2f\n",
		d.Balls(), d.MaxShift, d.MaxRadius(), d.MeanRadius())
	fmt.Printf("  cut edges: %d of %d (fraction %.4f)\n", d.CutEdges, d.Edges, d.CutFraction())
	fmt.Printf("  wall time: %s (validated)\n", elapsed.Round(time.Microsecond))
	return nil
}

// runDecompSched is the -sched mode: for every (family, workers) pair, the
// flood workload (min-ID source, horizon eccentricity+2) runs through the
// sharded scheduler with contiguous index shards and with the precomputed
// low-cut ball shards; each variant's best-of-reps wall time becomes a
// rounds/s figure. The partition closure hands the scheduler precomputed
// shards, so the timed region compares sweep locality, not decomposition
// cost — and outputs are required to be bit-identical between the variants.
func runDecompSched(graphsList string, n int, seed int64, beta float64, schedWorkers string, reps int, jsonOut bool) error {
	families := strings.Split(graphsList, ",")
	var workerCounts []int
	for _, s := range strings.Split(schedWorkers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 2 {
			return fmt.Errorf("decomp -sched-workers: %q is not a worker count >= 2", s)
		}
		workerCounts = append(workerCounts, w)
	}
	if reps < 1 {
		reps = 1
	}
	rep := decompReport{Beta: beta, Seed: seed, CPUs: runtime.NumCPU()}
	scratch := graph.NewBFSScratch()
	for _, family := range families {
		family = strings.TrimSpace(family)
		g, err := makeGraph(family, n, seed)
		if err != nil {
			return err
		}
		d, err := decomp.Decompose(g, beta, seed)
		if err != nil {
			return err
		}
		src, minID := 0, g.ID(0)
		for v := 1; v < g.N(); v++ {
			if id := g.ID(v); id < minID {
				src, minID = v, id
			}
		}
		ecc := 0
		for _, u := range g.BFSWithin(src, -1, scratch) {
			if dd := scratch.Dist(int(u)); dd > ecc {
				ecc = dd
			}
		}
		p := &local.FloodProtocol{SourceID: minID, Rounds: ecc + 2}

		for _, w := range workerCounts {
			shards := d.Shards(w)
			lowcut := func(*graph.Graph, int) ([][]int32, error) { return shards, nil }
			idxOut, idxRate, err := bestFloodRate(g, p, local.RunConfig{Workers: w}, reps)
			if err != nil {
				return fmt.Errorf("decomp %s workers %d: index shards: %w", family, w, err)
			}
			lcOut, lcRate, err := bestFloodRate(g, p, local.RunConfig{Workers: w, Partition: lowcut}, reps)
			if err != nil {
				return fmt.Errorf("decomp %s workers %d: low-cut shards: %w", family, w, err)
			}
			match := len(idxOut) == len(lcOut)
			if match {
				for v := range idxOut {
					if idxOut[v] != lcOut[v] {
						match = false
						break
					}
				}
			}
			pt := decompPoint{
				Graph: family, Nodes: g.N(), EdgesM: g.M(), Workers: w,
				Balls: d.Balls(), CutFraction: d.CutFraction(),
				IndexRoundsPerS: idxRate, LowcutRoundsPerS: lcRate,
				OutputsMatch: match,
			}
			if idxRate > 0 {
				pt.Speedup = lcRate / idxRate
			}
			rep.Points = append(rep.Points, pt)
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("decomp sched bench: beta=%g seed=%d cpus=%d (flood workload, best of %d)\n",
			rep.Beta, rep.Seed, rep.CPUs, reps)
		for _, pt := range rep.Points {
			fmt.Printf("  %-6s n=%d m=%d w=%d: %d balls, cut %.4f — index %.0f rounds/s, low-cut %.0f rounds/s (%.2fx), match %v\n",
				pt.Graph, pt.Nodes, pt.EdgesM, pt.Workers, pt.Balls, pt.CutFraction,
				pt.IndexRoundsPerS, pt.LowcutRoundsPerS, pt.Speedup, pt.OutputsMatch)
		}
	}
	for _, pt := range rep.Points {
		if !pt.OutputsMatch {
			return fmt.Errorf("decomp: sharding variants diverged on %s at %d workers", pt.Graph, pt.Workers)
		}
	}
	return nil
}

// bestFloodRate runs the flood through the sharded scheduler reps times and
// returns the last outputs plus the best-wall-time rounds/s.
func bestFloodRate(g *graph.Graph, p *local.FloodProtocol, cfg local.RunConfig, reps int) ([]any, float64, error) {
	var (
		out  []any
		st   local.Stats
		best time.Duration
	)
	for i := 0; i < reps; i++ {
		start := time.Now()
		o, s, err := local.RunMessageConfig(g, p, nil, cfg)
		if err != nil {
			return nil, 0, err
		}
		wall := time.Since(start)
		if i == 0 || wall < best {
			best = wall
		}
		out, st = o, s
	}
	rate := 0.0
	if best > 0 {
		rate = float64(st.Rounds) / best.Seconds()
	}
	return out, rate, nil
}
