package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"localadvice/internal/server"
)

// cmdServe runs the HTTP serving layer (internal/server) until SIGTERM or
// SIGINT, then drains gracefully: the listener closes immediately, in-flight
// requests get a grace period to finish.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	cacheMB := fs.Int("cache-mb", 64, "artifact cache budget in MiB (-1 disables caching)")
	maxInflight := fs.Int("max-inflight", 0, "in-flight request bound before 429 shedding (0 = 4 x GOMAXPROCS)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline")
	maxBodyMB := fs.Int("max-body-mb", 8, "request body size bound in MiB")
	maxNodes := fs.Int("max-nodes", 200_000, "largest accepted graph (nodes)")
	storeDir := fs.String("store-dir", "", "persistent artifact store directory (empty = no persistence)")
	role := fs.String("role", "", "role label reported at /v1/stats (default \"single\"; locad cluster spawns shards with \"shard\")")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	applyWorkers(*workers)

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	srv, err := server.New(server.Config{
		CacheBytes:     cacheBytes,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		MaxBodyBytes:   int64(*maxBodyMB) << 20,
		MaxNodes:       *maxNodes,
		StoreDir:       *storeDir,
		Role:           *role,
	})
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The smoke script and loadgen poll for this exact line to learn the
	// bound address (needed when -addr ends in :0).
	fmt.Printf("locad serve: listening on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "locad serve: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return <-errc
	}
}
