package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/growth"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// cmdProve produces the Section 1.2 locally checkable proof that an LCL is
// solvable on the given graph, printing the 1-bit-per-node proof string.
func cmdProve(args []string) error {
	fs := flag.NewFlagSet("prove", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	problem := fs.String("problem", "3-coloring", "LCL: 3-coloring, 4-coloring, mis, maximal-matching")
	radius := fs.Int("radius", 40, "cluster radius of the Theorem 4.1 schema")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	s, err := growthSchema(*problem, *radius)
	if err != nil {
		return err
	}
	proof, err := s.Prove(g)
	if err != nil {
		return err
	}
	var sb strings.Builder
	for v := 0; v < g.N(); v++ {
		sb.WriteString(proof[v].String())
	}
	fmt.Printf("proof that %q is solvable on %v (1 bit per node):\n%s\n", *problem, g, sb.String())
	res, err := s.VerifyProof(g, proof)
	if err != nil {
		return err
	}
	fmt.Printf("verifier: accepted=%v rounds=%d\n", res.Accepted, res.Rounds)
	return nil
}

// cmdVerifyProof checks a proof string (as printed by prove) against a
// regenerated graph.
func cmdVerifyProof(args []string) error {
	fs := flag.NewFlagSet("verifyproof", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	problem := fs.String("problem", "3-coloring", "LCL: 3-coloring, 4-coloring, mis, maximal-matching")
	radius := fs.Int("radius", 40, "cluster radius of the Theorem 4.1 schema")
	proofStr := fs.String("proof", "", "bit string, one character per node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	if len(*proofStr) != g.N() {
		return fmt.Errorf("proof has %d bits for %d nodes", len(*proofStr), g.N())
	}
	advice := make(local.Advice, g.N())
	for v, r := range *proofStr {
		switch r {
		case '0':
			advice[v] = bitstr.New(0)
		case '1':
			advice[v] = bitstr.New(1)
		default:
			return fmt.Errorf("proof character %q at node %d", r, v)
		}
	}
	s, err := growthSchema(*problem, *radius)
	if err != nil {
		return err
	}
	res, err := s.VerifyProof(g, advice)
	if err != nil {
		return err
	}
	if res.Accepted {
		fmt.Printf("ACCEPTED by all %d nodes in %d rounds\n", g.N(), res.Rounds)
		return nil
	}
	fmt.Printf("REJECTED by %d nodes (first few: %v)\n", len(res.Rejectors), head(res.Rejectors, 8))
	os.Exit(1)
	return nil
}

func growthSchema(problem string, radius int) (growth.Schema, error) {
	colorSolver := func(g *graph.Graph) (*lcl.Solution, error) {
		return lcl.ColoringSolution(g, lcl.GreedyColoring(g))
	}
	switch problem {
	case "3-coloring":
		return growth.Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: radius, Solver: colorSolver}, nil
	case "4-coloring":
		return growth.Schema{Problem: lcl.Coloring{K: 4}, ClusterRadius: radius, Solver: colorSolver}, nil
	case "mis":
		return growth.Schema{Problem: lcl.MIS{}, ClusterRadius: radius}, nil
	case "maximal-matching":
		return growth.Schema{Problem: lcl.MaximalMatching{}, ClusterRadius: radius}, nil
	default:
		return growth.Schema{}, fmt.Errorf("unknown problem %q", problem)
	}
}

func head(xs []int, k int) []int {
	if len(xs) <= k {
		return xs
	}
	return xs[:k]
}
