package main

import (
	"flag"
	"fmt"
	"os"

	"localadvice/internal/coloring"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/orient"
	"localadvice/internal/viz"
)

// cmdDot renders a graph (optionally with a schema's advice and decoded
// solution) as Graphviz DOT on stdout:
//
//	locad dot -graph cycle -n 40 -schema orient | dot -Tsvg > out.svg
func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	schema := fs.String("schema", "none", "overlay: none, orient, color3")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	opts := viz.Options{Name: "locad"}
	switch *schema {
	case "none":
	case "orient":
		s := orient.Schema{P: orient.DefaultParams()}
		va, err := s.EncodeVar(g, nil)
		if err != nil {
			return err
		}
		sol, _, err := s.DecodeVar(g, va, nil)
		if err != nil {
			return err
		}
		opts.Advice = va.Dense(g.N())
		opts.Solution = sol
	case "color3":
		s := coloring.ThreeColoring{CoverRadius: 10, GroupSpread: 2}
		advice, err := s.Encode(g)
		if err != nil {
			return err
		}
		sol, _, err := s.Decode(g, advice)
		if err != nil {
			return err
		}
		if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
			return err
		}
		opts.Advice = advice
		opts.Solution = sol
	default:
		return fmt.Errorf("unknown schema overlay %q", *schema)
	}
	var w = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return viz.WriteDOT(w, g, opts)
}

// cmdGen writes a generated graph in the edge-list text format, and cmdLoad
// round-trips a file through the parser to validate it.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	var w = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return graph.WriteEdgeList(w, g)
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	in := fs.String("i", "", "input edge-list file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("load needs -i <file>")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return err
	}
	fmt.Printf("%s diameter=%d connected=%v\n", g, g.Diameter(), g.IsConnected())
	return nil
}
