package main

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"localadvice/internal/lll"
)

// TestDetLLLCapErrorSurfaces pins the typed-cap surface end to end: a tiny
// -cap forces the Moser–Tardos sweep past its resampling budget, and the
// command must return an error that still errors.Is/As-matches
// lll.ErrResamplingCap through the CLI wrapping — main prints it as a
// single clean line, never a stack trace.
func TestDetLLLCapErrorSurfaces(t *testing.T) {
	err := run([]string{"detlll", "-graph", "cycle", "-n", "1024", "-seeds", "1", "-cap", "1", "-no-warm", "-schemas", "orient"})
	if err == nil {
		t.Fatal("cap 1 sweep succeeded")
	}
	if !errors.Is(err, lll.ErrResamplingCap) {
		t.Fatalf("err = %v, want wrap of lll.ErrResamplingCap", err)
	}
	var capErr *lll.ResamplingCapError
	if !errors.As(err, &capErr) {
		t.Fatalf("errors.As failed for %v", err)
	}
	if capErr.Resamplings != 1 {
		t.Errorf("Resamplings = %d, want 1", capErr.Resamplings)
	}
	msg := err.Error()
	if strings.Contains(msg, "\n") {
		t.Errorf("cap error is not a single line: %q", msg)
	}
	if strings.Contains(msg, "goroutine") {
		t.Errorf("cap error looks like a stack trace: %q", msg)
	}
}

// TestDetLLLJSONShape pins the machine-readable report scripts/bench.sh
// embeds: every (schema, method) point present, det paths at zero
// resamplings with exactly one distinct output, and the warm section
// showing the det hit rate strictly above the seeded one.
func TestDetLLLJSONShape(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	runErr := run([]string{"detlll", "-graph", "cycle", "-n", "96", "-seeds", "3", "-json"})
	os.Stdout = orig
	w.Close()
	var rep struct {
		Seeds  int `json:"seeds"`
		Points []struct {
			Schema      string  `json:"schema"`
			Method      string  `json:"method"`
			Resamplings float64 `json:"resamplings"`
			Distinct    int     `json:"distinct"`
			Valid       bool    `json:"valid"`
		} `json:"points"`
		Warm []struct {
			Schema        string  `json:"schema"`
			DetHitRate    float64 `json:"det_hit_rate"`
			SeededHitRate float64 `json:"seeded_hit_rate"`
		} `json:"warm"`
	}
	decErr := json.NewDecoder(r).Decode(&rep)
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if decErr != nil {
		t.Fatal(decErr)
	}
	if len(rep.Points) != 6 {
		t.Fatalf("%d points, want 2 schemas x 3 methods", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if !pt.Valid {
			t.Errorf("%s/%s decoded invalid", pt.Schema, pt.Method)
		}
		if pt.Method != "mt" {
			if pt.Resamplings != 0 {
				t.Errorf("%s/%s: %v resamplings on a deterministic path", pt.Schema, pt.Method, pt.Resamplings)
			}
			if pt.Distinct != 1 {
				t.Errorf("%s/%s: %d distinct outputs across seeds", pt.Schema, pt.Method, pt.Distinct)
			}
		}
	}
	if len(rep.Warm) != 2 {
		t.Fatalf("%d warm rows, want 2", len(rep.Warm))
	}
	for _, wr := range rep.Warm {
		if wr.DetHitRate <= wr.SeededHitRate {
			t.Errorf("%s: det hit rate %.2f not above seeded %.2f", wr.Schema, wr.DetHitRate, wr.SeededHitRate)
		}
	}
}
