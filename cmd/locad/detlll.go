package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"localadvice/internal/harness"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/obs"
	"localadvice/internal/server"
)

// detPoint is one (schema, method) comparison cell of the deterministic-LLL
// bench: the LLL instance size, the solver work (resamplings for
// Moser–Tardos, Bad evaluations for both paths), and the seed-independence
// measurement — the number of distinct advice outputs across the swept
// seeds, which the regression gate pins to 1 on the det paths.
type detPoint struct {
	Schema      string  `json:"schema"`
	Graph       string  `json:"graph"`
	N           int     `json:"n"`
	Method      string  `json:"method"`
	Events      int64   `json:"events"`
	Resamplings float64 `json:"resamplings"`
	Evaluations float64 `json:"evaluations"`
	Repairs     float64 `json:"repairs"`
	Distinct    int     `json:"distinct"`
	Bits        int     `json:"bits"`
	Valid       bool    `json:"valid"`
}

// detWarm is the warm-cache contrast for one schema pair: an in-process
// server is driven with /v1/encode requests whose graph spec rotates the
// seed on a seed-free family, once against the det-mode schema (seedless
// advice keys — every request after the first hits) and once against the
// seeded schema (seed-widened keys — every request misses).
type detWarm struct {
	Schema        string  `json:"schema"`
	Requests      int     `json:"requests"`
	DetHits       int     `json:"det_hits"`
	SeededHits    int     `json:"seeded_hits"`
	DetHitRate    float64 `json:"det_hit_rate"`
	SeededHitRate float64 `json:"seeded_hit_rate"`
}

// detlllReport is the machine-readable comparison scripts/bench.sh embeds
// as the "detlll" section and the bench-regression gate enforces.
type detlllReport struct {
	Graph  string     `json:"graph"`
	N      int        `json:"n"`
	Seeds  int        `json:"seeds"`
	Points []detPoint `json:"points"`
	Warm   []detWarm  `json:"warm"`
}

// cmdDetLLL compares the three LLL resolution methods — seeded Moser–Tardos
// (mt), conditional expectations (det), and the decomposition-guided
// deterministic variant (decomposed) — on one graph per schema, then
// measures the serving-layer payoff of the det path: warm cache hit rates
// under rotating request seeds for the det-mode vs the seeded schema
// entries.
func cmdDetLLL(args []string) error {
	fs := flag.NewFlagSet("detlll", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	schemasFlag := fs.String("schemas", "orient,color3", "comma-separated deterministic-LLL schemas (orient, color3)")
	seeds := fs.Int("seeds", 5, "number of consecutive seeds to sweep per method")
	mtCap := fs.Int("cap", 1<<20, "Moser-Tardos resampling cap (tiny values surface the typed cap error)")
	noWarm := fs.Bool("no-warm", false, "skip the serving-layer warm-hit measurement")
	jsonOut := fs.Bool("json", false, "emit the comparison as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("detlll: -seeds must be >= 1, got %d", *seeds)
	}
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	rep := detlllReport{Graph: *kind, N: g.N(), Seeds: *seeds}

	for _, name := range strings.Split(*schemasFlag, ",") {
		name = strings.TrimSpace(name)
		ds, ok := harness.DetSchemaByName(name)
		if !ok {
			return fmt.Errorf("detlll: unknown schema %q (have orient, color3)", name)
		}
		for _, method := range harness.DetMethods() {
			pt := detPoint{Schema: name, Graph: *kind, N: g.N(), Method: string(method)}
			var advice local.Advice
			var sumResamp, sumEvals, sumRepairs int64
			distinct := map[string]bool{}
			for i := 0; i < *seeds; i++ {
				c := &obs.Collector{}
				var a local.Advice
				var err error
				if method == harness.MethodMT {
					a, err = ds.EncodeMTCapped(g, *seed+int64(i), *mtCap, c)
				} else {
					a, err = ds.EncodeWith(method, g, 0, c)
				}
				if err != nil {
					return fmt.Errorf("detlll %s/%s: %w", name, method, err)
				}
				advice = a
				distinct[adviceFingerprint(a)] = true
				pt.Events = obsTotal(c, "lll.events")
				sumResamp += obsTotal(c, "lll.resamplings")
				sumEvals += obsTotal(c, "lll.evaluations")
				sumRepairs += obsTotal(c, "lll.repairs")
			}
			runs := float64(*seeds)
			pt.Resamplings = float64(sumResamp) / runs
			pt.Evaluations = float64(sumEvals) / runs
			pt.Repairs = float64(sumRepairs) / runs
			pt.Distinct = len(distinct)
			pt.Bits = advice.TotalBits()
			sol, _, err := ds.DecodeOn("ball", g, advice, local.RunConfig{})
			if err != nil {
				return fmt.Errorf("detlll %s/%s decode: %w", name, method, err)
			}
			if err := lcl.Verify(ds.Problem(g), g, sol); err != nil {
				return fmt.Errorf("detlll %s/%s verify: %w", name, method, err)
			}
			pt.Valid = true
			rep.Points = append(rep.Points, pt)
		}
		if !*noWarm {
			warm, err := measureDetWarm(name, *kind, *n, *seeds)
			if err != nil {
				return err
			}
			rep.Warm = append(rep.Warm, warm)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("deterministic LLL comparison: graph=%s n=%d, %d seeds per method\n", rep.Graph, rep.N, rep.Seeds)
	for _, pt := range rep.Points {
		fmt.Printf("  %-6s %-10s events=%-4d resamp=%-8.2f evals=%-9.2f repairs=%-5.2f bits=%-5d distinct=%d\n",
			pt.Schema, pt.Method, pt.Events, pt.Resamplings, pt.Evaluations, pt.Repairs, pt.Bits, pt.Distinct)
	}
	for _, w := range rep.Warm {
		fmt.Printf("  %-6s warm hits over %d rotating-seed requests: det %d (%.2f), seeded %d (%.2f)\n",
			w.Schema, w.Requests, w.DetHits, w.DetHitRate, w.SeededHits, w.SeededHitRate)
	}
	return nil
}

// adviceFingerprint renders advice canonically for distinct-output counts.
func adviceFingerprint(a local.Advice) string {
	var sb strings.Builder
	for _, s := range a {
		sb.WriteString(s.String())
		sb.WriteByte('|')
	}
	return sb.String()
}

// obsTotal sums one event kind in a collector.
func obsTotal(c *obs.Collector, kind string) int64 {
	var total int64
	for _, e := range c.Events() {
		if e.Kind == kind {
			total += e.Value
		}
	}
	return total
}

// measureDetWarm drives an in-process server with /v1/encode requests whose
// graph spec rotates the seed, counting cache hits for the det-mode schema
// ("<name>det", seedless advice keys) against the seeded one ("<name>lll").
// On a seed-free family every request resolves to one graph digest, so the
// hit-rate delta isolates the cache-key contract of DESIGN.md decision 12.
func measureDetWarm(name, family string, n, requests int) (detWarm, error) {
	srv, err := server.New(server.Config{})
	if err != nil {
		return detWarm{}, err
	}
	hits := func(schema string) (int, error) {
		count := 0
		for seed := 1; seed <= requests; seed++ {
			body := fmt.Sprintf(`{"schema":%q,"graph":{"family":%q,"n":%d,"seed":%d}}`, schema, family, n, seed)
			r := httptest.NewRequest("POST", "/v1/encode", strings.NewReader(body))
			r.Header.Set("Content-Type", "application/json")
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, r)
			if w.Code != http.StatusOK {
				return 0, fmt.Errorf("detlll warm probe: %s encode seed %d: %d %s", schema, seed, w.Code, w.Body.String())
			}
			var resp struct {
				Cached bool `json:"cached"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				return 0, err
			}
			if resp.Cached {
				count++
			}
		}
		return count, nil
	}
	detHits, err := hits(name + "det")
	if err != nil {
		return detWarm{}, err
	}
	seededHits, err := hits(name + "lll")
	if err != nil {
		return detWarm{}, err
	}
	return detWarm{
		Schema: name, Requests: requests,
		DetHits: detHits, SeededHits: seededHits,
		DetHitRate:    float64(detHits) / float64(requests),
		SeededHitRate: float64(seededHits) / float64(requests),
	}, nil
}
