// Command locad is the command-line front end of the localadvice library:
// it generates graphs, runs advice schemas end to end, and regenerates the
// experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	locad exp [E1 ... E11]       run experiments (all by default)
//	locad exp -trace t.jsonl -profile cpu.pprof -summary s.json
//	locad trace -engine message -graph torus -n 256 -o trace.jsonl
//	locad fault -schema color3 -class flip -rate 0.05 -runs 10
//	locad orient  -graph cycle -n 200
//	locad color3  -graph cycle -n 120
//	locad deltacolor -graph torus -n 48
//	locad compress -d 6 -n 120
//	locad graphinfo -graph grid -n 100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"localadvice/internal/coloring"
	"localadvice/internal/core"
	"localadvice/internal/decompress"
	"localadvice/internal/graph"
	"localadvice/internal/harness"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/obs"
	"localadvice/internal/orient"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "locad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "exp":
		return cmdExp(args[1:])
	case "orient":
		return cmdOrient(args[1:])
	case "color3":
		return cmdColor3(args[1:])
	case "deltacolor":
		return cmdDeltaColor(args[1:])
	case "compress":
		return cmdCompress(args[1:])
	case "graphinfo":
		return cmdGraphInfo(args[1:])
	case "engine":
		return cmdEngine(args[1:])
	case "msgred":
		return cmdMsgred(args[1:])
	case "decomp":
		return cmdDecomp(args[1:])
	case "detlll":
		return cmdDetLLL(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	case "fault":
		return cmdFault(args[1:])
	case "prove":
		return cmdProve(args[1:])
	case "verifyproof":
		return cmdVerifyProof(args[1:])
	case "dot":
		return cmdDot(args[1:])
	case "gen":
		return cmdGen(args[1:])
	case "load":
		return cmdLoad(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "cluster":
		return cmdCluster(args[1:])
	case "loadgen":
		return cmdLoadgen(args[1:])
	case "store":
		return cmdStore(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `locad — local computation with advice (PODC 2024 reproduction)

subcommands:
  exp [E1 ... E11]  run experiments and print their tables (all by default);
                    -trace/-summary observe the run (sequential), -profile
                    writes a CPU profile
  orient            encode+decode an almost-balanced orientation
  color3            encode+decode a 3-coloring with 1 bit per node
  deltacolor        encode+decode a Δ-coloring via the Section 6 pipeline
  compress          compress and decompress a random edge subset
  graphinfo         print a generated graph's parameters
  engine            run the radius-T view-gathering reference protocol on a
                    chosen execution engine (-engine {ball,message,goroutine,
                    sequential,frugal} -workers <w>) and report rounds/
                    messages/time
  msgred            measure the frugal engine's message/byte reduction vs the
                    stock scheduler on a flood workload (-graph, -n, -rho,
                    -json)
  decomp            compute a seeded (β, O(log n/β)) low-diameter ball
                    decomposition and report balls/radii/cut fraction; -sched
                    benchmarks the scheduler with low-cut ball shards vs
                    contiguous index shards (-graphs -sched-workers -reps
                    -json)
  detlll            compare LLL resolution methods (seeded Moser-Tardos vs the
                    deterministic conditional-expectations and decomposed
                    solvers) on one graph: solver work, seed-independence of
                    the advice, and the det-mode schemas' warm cache hit-rate
                    advantage under rotating request seeds (-schemas -seeds
                    -cap -json)
  trace             run the engine workload with metrics attached and write a
                    JSONL per-round trace (-o <file>, -profile <cpu.pprof>)
  fault             inject faults (-class {flip,truncate,reassign,crash}) into
                    a schema run or an engine run and report the outcome of
                    every repetition (valid / detected / crashed)
  prove             emit a 1-bit locally checkable proof that an LCL is solvable
  verifyproof       run the distributed verifier on a proof string
  dot               render a graph (+ optional schema overlay) as Graphviz DOT
  gen               write a generated graph in the edge-list text format
  load              parse and validate an edge-list file
  serve             run the HTTP/JSON serving layer (-addr -cache-mb
                    -max-inflight -timeout -store-dir); SIGTERM drains
                    gracefully; -store-dir persists artifacts across restarts
  cluster           run a local shard fleet: -shards N serve processes plus a
                    digest-routing router on -addr (-replicas -hot-threshold
                    -store-root); SIGTERM drains the router then the shards
  loadgen           drive a running serve with cold/warm /v1/decode traffic
                    and report req/s + p50/p95/p99 per phase (-json for the
                    shape bench.sh embeds); -batch adds a binary /v1/batch
                    phase, -probe measures a single decode (restart recovery),
                    -cluster sweeps routed throughput at several fleet sizes
  store {ls,gc,verify}  inspect, garbage-collect or integrity-check a
                    persistent artifact store directory (-dir)

common flags: -graph {cycle,path,grid,torus,regular,planted3,planted4,gnp} -n <size> -seed <s>
              -workers <w>  view-engine / experiment worker count (0 = GOMAXPROCS)
`)
}

// workersFlag registers the shared -workers flag. applyWorkers must be
// called after parsing; it installs the value as the view engine's default
// worker count and returns it for callers that fan out themselves.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "parallel workers for the view engine (0 = GOMAXPROCS)")
}

func applyWorkers(w int) int {
	local.SetDefaultWorkers(w)
	return w
}

func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ContinueOnError)
	workers := workersFlag(fs)
	tracePath := fs.String("trace", "", "write a JSONL engine trace of the (sequential) observed run to this file")
	profilePath := fs.String("profile", "", "write a CPU profile of the experiment run to this file")
	summaryPath := fs.String("summary", "", "write per-experiment engine summaries as JSON to this file ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := applyWorkers(*workers)
	ids := fs.Args()
	if len(ids) == 0 {
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	}
	exps := make([]harness.Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := harness.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(harness.IDs(), ", "))
		}
		exps = append(exps, e)
	}
	if *profilePath != "" {
		f, err := os.Create(*profilePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	observe := *tracePath != "" || *summaryPath != ""
	results, err := harness.RunManyObserved(exps, w, observe)
	if err != nil {
		return err
	}
	for _, r := range results {
		r.Table.Render(os.Stdout)
	}
	if *tracePath != "" {
		if err := writeExpTrace(*tracePath, results); err != nil {
			return err
		}
	}
	if *summaryPath != "" {
		if err := writeExpSummaries(*summaryPath, results); err != nil {
			return err
		}
	}
	return nil
}

// writeExpTrace concatenates the per-experiment traces into one JSONL file,
// prefixing each experiment's records with an {"type":"experiment"} marker
// line so consumers can segment the stream.
func writeExpTrace(path string, results []harness.ExperimentResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, r := range results {
		if _, err := fmt.Fprintf(f, "{\"type\":\"experiment\",\"id\":%q}\n", r.ID); err != nil {
			return err
		}
		if err := r.Collector.WriteJSONL(f); err != nil {
			return err
		}
	}
	return f.Close()
}

// writeExpSummaries writes the per-experiment engine summaries as a single
// JSON object keyed by experiment ID — the shape scripts/bench.sh embeds
// under the "experiments" key of its BENCH_*.json reports.
func writeExpSummaries(path string, results []harness.ExperimentResult) error {
	out := make(map[string]*obs.Summary, len(results))
	for _, r := range results {
		out[r.ID] = r.Summary
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// graphFlags parses the shared graph-construction flags.
func graphFlags(fs *flag.FlagSet) (kind *string, n *int, seed *int64) {
	kind = fs.String("graph", "cycle", "graph family: cycle, path, grid, torus, regular, planted3, planted4, gnp")
	n = fs.Int("n", 120, "graph size (nodes; grids/tori use the nearest rectangle)")
	seed = fs.Int64("seed", 1, "random seed for generated graphs and IDs")
	return
}

// makeGraph delegates to the harness's request-shaped graph constructor so
// the CLI and the serving API build identical graphs from identical specs.
func makeGraph(kind string, n int, seed int64) (*graph.Graph, error) {
	return harness.BuildGraph(kind, n, seed)
}

func cmdOrient(args []string) error {
	fs := flag.NewFlagSet("orient", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	spacing := fs.Int("spacing", 12, "mark spacing along trails")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	applyWorkers(*workers)
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	s := orient.Schema{P: orient.Params{MarkSpacing: *spacing, MarkWindow: *spacing}}
	va, err := s.EncodeVar(g, nil)
	if err != nil {
		return err
	}
	sol, stats, err := s.DecodeVar(g, va, nil)
	if err != nil {
		return err
	}
	if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
		return err
	}
	fmt.Printf("%s: almost-balanced orientation decoded and verified\n", g)
	fmt.Printf("  bit holders: %d (%d advice bits total), decode rounds: %d\n",
		len(va), va.TotalBits(), stats.Rounds)
	_, base := orient.NoAdviceOrientation(g)
	fmt.Printf("  no-advice baseline would need %d rounds\n", base.Rounds)
	return nil
}

func cmdColor3(args []string) error {
	fs := flag.NewFlagSet("color3", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	applyWorkers(*workers)
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	schema := coloring.ThreeColoring{CoverRadius: 10, GroupSpread: 2}
	advice, err := schema.Encode(g)
	if err != nil {
		return err
	}
	sol, stats, err := schema.Decode(g, advice)
	if err != nil {
		return err
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
		return err
	}
	ratio, err := core.Sparsity(advice)
	if err != nil {
		return err
	}
	fmt.Printf("%s: proper 3-coloring decoded from 1 bit per node\n", g)
	fmt.Printf("  ones ratio: %.4f, decode rounds: %d\n", ratio, stats.Rounds)
	return nil
}

func cmdDeltaColor(args []string) error {
	fs := flag.NewFlagSet("deltacolor", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	applyWorkers(*workers)
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	delta := g.MaxDegree()
	p := coloring.NewDeltaPipeline(delta, 4)
	va, err := p.EncodeVar(g, nil)
	if err != nil {
		return err
	}
	sol, stats, err := p.DecodeVar(g, va, nil)
	if err != nil {
		return err
	}
	if err := lcl.Verify(lcl.Coloring{K: delta}, g, sol); err != nil {
		return err
	}
	fmt.Printf("%s: Δ-coloring with Δ = %d decoded and verified\n", g, delta)
	fmt.Printf("  bit holders: %d, decode rounds: %d, colors used: %d\n",
		len(va), stats.Rounds, coloring.MaxColor(sol.Node))
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ContinueOnError)
	n := fs.Int("n", 120, "nodes")
	deg := fs.Int("d", 6, "degree of the random regular graph")
	seed := fs.Int64("seed", 1, "random seed")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	applyWorkers(*workers)
	rng := rand.New(rand.NewSource(*seed))
	g, err := graph.RandomRegular(*n, *deg, rng)
	if err != nil {
		return err
	}
	x := make(decompress.EdgeSet)
	for e := 0; e < g.M(); e++ {
		if rng.Intn(2) == 0 {
			x[e] = true
		}
	}
	spacing := 20
	if *deg >= 8 {
		spacing = 30
	}
	for _, codec := range []decompress.Codec{decompress.Trivial{}, decompress.Oriented{P: orient.Params{MarkSpacing: spacing, MarkWindow: spacing}}} {
		st, err := decompress.Measure(codec, g, x)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s avg %.2f bits/node, max %d, rounds %d, exact %v (counting bound %.1f)\n",
			st.Codec+":", st.AvgBits, st.MaxBits, st.Rounds, st.Exact, st.LowerBound)
	}
	return nil
}

// cmdEngine runs the radius-T view-gathering reference protocol — the
// workload the engine-equivalence tests pin — on a selectable execution
// engine, for message-engine experiments and worker-count sweeps. All
// engines produce identical outputs and rounds; the message engines
// additionally report the delivered message count.
func cmdEngine(args []string) error {
	fs := flag.NewFlagSet("engine", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	radius := fs.Int("radius", 2, "view radius T of the reference protocol")
	engine := fs.String("engine", "message", "execution engine: ball, message (sharded scheduler), goroutine, sequential, frugal (skeleton transport)")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := applyWorkers(*workers)
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	decide := func(view *local.View) any { return view.G.N()*1_000_000 + view.G.M() }

	var (
		outputs []any
		stats   local.Stats
	)
	start := time.Now()
	switch *engine {
	case "ball":
		outputs, stats = local.RunBallConfig(g, nil, *radius, decide, local.RunConfig{Workers: w})
	case "message":
		outputs, stats, err = local.RunMessageConfig(g, &local.GatherProtocol{Radius: *radius, Decide: decide}, nil, local.RunConfig{Workers: w})
	case "goroutine":
		outputs, stats, err = local.RunGoroutine(g, &local.GatherProtocol{Radius: *radius, Decide: decide}, nil)
	case "sequential":
		outputs, stats, err = local.RunSequential(g, &local.GatherProtocol{Radius: *radius, Decide: decide}, nil)
	case "frugal":
		outputs, stats, err = local.RunFrugalConfig(g, &local.GatherProtocol{Radius: *radius, Decide: decide}, nil, local.RunConfig{Workers: w})
	default:
		return fmt.Errorf("unknown engine %q (have ball, message, goroutine, sequential, frugal)", *engine)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	// The checksum is engine-independent: every engine hands each node the
	// same radius-T view.
	checksum := 0
	for _, out := range outputs {
		checksum += out.(int)
	}
	fmt.Printf("%s engine=%s radius=%d workers=%d\n", g, *engine, *radius, w)
	fmt.Printf("  rounds: %d, messages: %d, output checksum: %d\n", stats.Rounds, stats.Messages, checksum)
	fmt.Printf("  wall time: %s\n", elapsed.Round(time.Microsecond))
	return nil
}

func cmdGraphInfo(args []string) error {
	fs := flag.NewFlagSet("graphinfo", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("%s diameter=%d connected=%v evenDegrees=%v\n",
		g, g.Diameter(), g.IsConnected(), g.AllDegreesEven())
	prof := g.GrowthProfile(5)
	fmt.Printf("growth |N<=r|: %v\n", prof)
	return nil
}
