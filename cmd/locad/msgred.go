package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"localadvice/internal/graph"
	"localadvice/internal/local"
	"localadvice/internal/obs"
)

// msgredReport is the machine-readable comparison scripts/bench.sh embeds
// as the "msgred" section and the bench-regression gate enforces.
type msgredReport struct {
	Graph            string  `json:"graph"`
	Nodes            int     `json:"nodes"`
	EdgesM           int     `json:"edges"`
	Rho              int     `json:"rho"`
	FloodRounds      int     `json:"flood_rounds"`
	StockRounds      int     `json:"stock_rounds"`
	StockMessages    int64   `json:"stock_messages"`
	StockBytes       int64   `json:"stock_bytes"`
	FrugalRounds     int     `json:"frugal_rounds"`
	FrugalMessages   int64   `json:"frugal_messages"`
	FrugalBytes      int64   `json:"frugal_bytes"`
	SkeletonEdges    int     `json:"skeleton_edges"`
	Clusters         int     `json:"clusters"`
	MessageReduction float64 `json:"message_reduction"`
	ByteReduction    float64 `json:"byte_reduction"`
	RoundOverhead    float64 `json:"round_overhead"`
	OutputsMatch     bool    `json:"outputs_match"`
}

// cmdMsgred runs the canonical flood workload through the stock scheduler
// and the frugal engine on the same graph and reports the message/byte
// reduction and round overhead. The flood source is the minimum-ID node,
// the horizon its eccentricity plus two — long enough that every node is
// informed and the flood saturates, the regime the skeleton simulation is
// built for.
func cmdMsgred(args []string) error {
	fs := flag.NewFlagSet("msgred", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	rho := fs.Int("rho", local.DefaultFrugalRadius, "skeleton cluster radius ρ (must be positive)")
	jsonOut := fs.Bool("json", false, "emit the comparison as JSON")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := applyWorkers(*workers)
	// The engine treats 0 as "use the default", but at the CLI an explicit
	// -rho 0 is almost certainly a typo for a real radius — the flag default
	// already names the engine default, so any non-positive value is an
	// error here.
	if *rho <= 0 {
		return fmt.Errorf("%w: -rho %d must be positive (default ρ=%d)",
			local.ErrFrugalRadius, *rho, local.DefaultFrugalRadius)
	}
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}

	src, minID := 0, int64(0)
	if g.N() == 0 {
		return fmt.Errorf("msgred needs a non-empty graph")
	}
	minID = g.ID(0)
	for v := 1; v < g.N(); v++ {
		if id := g.ID(v); id < minID {
			src, minID = v, id
		}
	}
	s := graph.NewBFSScratch()
	ecc := 0
	for _, u := range g.BFSWithin(src, -1, s) {
		if d := s.Dist(int(u)); d > ecc {
			ecc = d
		}
	}
	p := &local.FloodProtocol{SourceID: minID, Rounds: ecc + 2}

	var stockC, frugalC obs.Collector
	stockOut, stockStats, err := local.RunMessageConfig(g, p, nil, local.RunConfig{Workers: w, Metrics: &stockC})
	if err != nil {
		return fmt.Errorf("stock engine: %w", err)
	}
	frugalOut, frugalStats, err := local.RunFrugalConfig(g, p, nil, local.RunConfig{Workers: w, FrugalRadius: *rho, Metrics: &frugalC})
	if err != nil {
		return fmt.Errorf("frugal engine: %w", err)
	}

	match := len(stockOut) == len(frugalOut)
	if match {
		for v := range stockOut {
			if stockOut[v] != frugalOut[v] {
				match = false
				break
			}
		}
	}

	sk := graph.BuildSkeleton(g, *rho, s)
	stockSum, frugalSum := stockC.Summary(), frugalC.Summary()

	rep := msgredReport{
		Graph:          *kind,
		Nodes:          g.N(),
		EdgesM:         g.M(),
		Rho:            *rho,
		FloodRounds:    p.Rounds,
		StockRounds:    stockStats.Rounds,
		StockMessages:  int64(stockStats.Messages),
		StockBytes:     stockSum.Bytes,
		FrugalRounds:   frugalStats.Rounds,
		FrugalMessages: int64(frugalStats.Messages),
		FrugalBytes:    frugalSum.Bytes,
		SkeletonEdges:  sk.Edges(),
		Clusters:       len(sk.Centers),
		OutputsMatch:   match,
	}
	if rep.FrugalMessages > 0 {
		rep.MessageReduction = float64(rep.StockMessages) / float64(rep.FrugalMessages)
	}
	if rep.FrugalBytes > 0 {
		rep.ByteReduction = float64(rep.StockBytes) / float64(rep.FrugalBytes)
	}
	if rep.StockRounds > 0 {
		rep.RoundOverhead = float64(rep.FrugalRounds) / float64(rep.StockRounds)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("%s flood source id=%d horizon=%d rounds\n", g, minID, p.Rounds)
		fmt.Printf("  stock : rounds %4d  messages %12d  bytes %12d\n", rep.StockRounds, rep.StockMessages, rep.StockBytes)
		fmt.Printf("  frugal: rounds %4d  messages %12d  bytes %12d   (ρ=%d, %d clusters, %d skeleton edges)\n",
			rep.FrugalRounds, rep.FrugalMessages, rep.FrugalBytes, rep.Rho, rep.Clusters, rep.SkeletonEdges)
		fmt.Printf("  reduction: %.1fx messages, %.1fx bytes at %.2fx rounds; outputs match: %v\n",
			rep.MessageReduction, rep.ByteReduction, rep.RoundOverhead, rep.OutputsMatch)
	}
	if !match {
		return fmt.Errorf("msgred: engine outputs diverged")
	}
	return nil
}
