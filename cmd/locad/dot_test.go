package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// renderDot runs the dot subcommand into a temp file and returns the output.
func renderDot(t *testing.T, args ...string) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "g.dot")
	if err := run(append([]string{"dot"}, append(args, "-o", out)...)); err != nil {
		t.Fatalf("dot %v: %v", args, err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDotPlainCycle pins the DOT structure on a known graph: an undirected
// 6-cycle must render as an undirected graph with exactly 6 node statements
// and 6 edge statements, all nodes unhighlighted.
func TestDotPlainCycle(t *testing.T) {
	got := renderDot(t, "-graph", "cycle", "-n", "6")
	if !strings.HasPrefix(got, "graph locad {") {
		t.Errorf("plain dot should be an undirected graph, got prefix %q", firstLine(got))
	}
	if n := strings.Count(got, "[label="); n != 6 {
		t.Errorf("node statements = %d, want 6", n)
	}
	if m := strings.Count(got, " -- "); m != 6 {
		t.Errorf("undirected edge statements = %d, want 6", m)
	}
	if strings.Contains(got, "penwidth=3") {
		t.Error("plain render must not highlight any node")
	}
	if !strings.HasSuffix(strings.TrimSpace(got), "}") {
		t.Error("dot output not closed")
	}
}

// TestDotColor3Overlay checks the schema overlay path: the color3 overlay
// annotates every node with its decoded color and advice bit, highlights
// the bit-holders, and uses at most 3 fill colors.
func TestDotColor3Overlay(t *testing.T) {
	got := renderDot(t, "-graph", "cycle", "-n", "40", "-schema", "color3")
	if n := strings.Count(got, "[label="); n != 40 {
		t.Errorf("node statements = %d, want 40", n)
	}
	for _, marker := range []string{"\\nc", "[1]", "[0]", "penwidth=3"} {
		if !strings.Contains(got, marker) {
			t.Errorf("color3 overlay missing %q (colors, advice bits, highlight)", marker)
		}
	}
	colors := map[string]bool{}
	for _, line := range strings.Split(got, "\n") {
		if i := strings.Index(line, "fillcolor=\""); i >= 0 {
			colors[line[i+11:i+18]] = true
		}
	}
	if len(colors) < 2 || len(colors) > 3 {
		t.Errorf("color3 overlay used %d fill colors, want 2 or 3", len(colors))
	}
}

// TestDotOrientOverlayDirected: the orientation overlay renders directed
// edges (a digraph), one per undirected edge of the input.
func TestDotOrientOverlayDirected(t *testing.T) {
	got := renderDot(t, "-graph", "cycle", "-n", "40", "-schema", "orient")
	if !strings.HasPrefix(got, "digraph locad {") {
		t.Errorf("orient overlay should be directed, got prefix %q", firstLine(got))
	}
	if m := strings.Count(got, " -> "); m != 40 {
		t.Errorf("directed edge statements = %d, want 40", m)
	}
}

// TestDotStdout: without -o the DOT goes to stdout (exercised for coverage
// of the stdout branch; content is checked by the file-based tests).
func TestDotStdout(t *testing.T) {
	got := captureStdout(t, func() {
		if err := run([]string{"dot", "-graph", "path", "-n", "5"}); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(got, "graph locad {") || strings.Count(got, " -- ") != 4 {
		t.Errorf("stdout dot for a 5-path wrong:\n%s", got)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	out := <-done
	os.Stdout = old
	return out
}
