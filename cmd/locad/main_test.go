package main

import (
	"localadvice/internal/persist"

	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the locad binary for subprocess-spawning subcommands:
// `locad cluster` re-executes os.Executable() as its shard children, and in
// tests that executable is this test binary. Dispatch those argv shapes
// straight into run() so spawned children behave like the real CLI.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && (os.Args[1] == "serve" || os.Args[1] == "cluster") {
		if err := run(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestRunSubcommands(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"orient cycle", []string{"orient", "-graph", "cycle", "-n", "120"}},
		{"orient torus", []string{"orient", "-graph", "torus", "-n", "36"}},
		{"color3", []string{"color3", "-graph", "cycle", "-n", "80"}},
		{"deltacolor torus", []string{"deltacolor", "-graph", "torus", "-n", "36"}},
		{"compress", []string{"compress", "-d", "4", "-n", "80"}},
		{"graphinfo", []string{"graphinfo", "-graph", "grid", "-n", "49"}},
		{"exp e2", []string{"exp", "E2"}},
		{"engine message", []string{"engine", "-graph", "grid", "-n", "100", "-radius", "2", "-engine", "message", "-workers", "2"}},
		{"engine ball", []string{"engine", "-graph", "cycle", "-n", "64", "-engine", "ball"}},
		{"engine goroutine", []string{"engine", "-graph", "torus", "-n", "36", "-engine", "goroutine"}},
		{"engine sequential", []string{"engine", "-graph", "grid", "-n", "49", "-engine", "sequential"}},
		{"engine frugal", []string{"engine", "-graph", "grid", "-n", "100", "-engine", "frugal"}},
		{"msgred", []string{"msgred", "-graph", "cycle", "-n", "64"}},
		{"msgred json", []string{"msgred", "-graph", "grid", "-n", "49", "-rho", "1", "-json"}},
		{"decomp", []string{"decomp", "-graph", "grid", "-n", "100", "-beta", "0.3"}},
		{"decomp gnp", []string{"decomp", "-graph", "gnp", "-n", "64", "-beta", "0.5", "-workers", "2"}},
		{"decomp sched", []string{"decomp", "-sched", "-graphs", "grid,gnp", "-n", "144", "-sched-workers", "2", "-reps", "1", "-json"}},
		{"detlll", []string{"detlll", "-graph", "cycle", "-n", "96", "-seeds", "2", "-no-warm"}},
		{"detlll json warm", []string{"detlll", "-graph", "cycle", "-n", "96", "-seeds", "2", "-schemas", "orient", "-json"}},
		{"prove mis", []string{"prove", "-graph", "cycle", "-n", "150", "-problem", "mis", "-radius", "25"}},
		{"help", []string{"help"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"unknown experiment", []string{"exp", "E99"}},
		{"unknown graph", []string{"orient", "-graph", "klein-bottle"}},
		{"unknown engine", []string{"engine", "-engine", "steam"}},
		{"bad proof problem", []string{"prove", "-problem", "traveling-salesman"}},
		{"wrong proof length", []string{"verifyproof", "-graph", "cycle", "-n", "10", "-proof", "01"}},
		{"bad proof chars", []string{"verifyproof", "-graph", "cycle", "-n", "3", "-proof", "0x1"}},
		{"msgred zero rho", []string{"msgred", "-graph", "cycle", "-n", "32", "-rho", "0"}},
		{"msgred negative rho", []string{"msgred", "-graph", "cycle", "-n", "32", "-rho", "-2"}},
		{"decomp bad beta", []string{"decomp", "-graph", "cycle", "-n", "32", "-beta", "-1"}},
		{"decomp bad sched workers", []string{"decomp", "-sched", "-sched-workers", "1"}},
		{"detlll bad schema", []string{"detlll", "-schemas", "mystery"}},
		{"detlll bad seeds", []string{"detlll", "-seeds", "0"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

func TestMakeGraphFamilies(t *testing.T) {
	for _, kind := range []string{"cycle", "path", "grid", "torus", "regular", "planted3", "planted4", "gnp"} {
		g, err := makeGraph(kind, 40, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.N() < 30 {
			t.Errorf("%s: suspiciously small graph n=%d", kind, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestGrowthSchemaNames(t *testing.T) {
	for _, p := range []string{"3-coloring", "4-coloring", "mis", "maximal-matching"} {
		if _, err := growthSchema(p, 20); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	if _, err := growthSchema("nope", 20); err == nil {
		t.Error("unknown problem accepted")
	}
}

func TestHead(t *testing.T) {
	if got := head([]int{1, 2, 3}, 2); len(got) != 2 {
		t.Errorf("head = %v", got)
	}
	if got := head([]int{1}, 5); len(got) != 1 {
		t.Errorf("head = %v", got)
	}
}

func TestUsageMentionsAllSubcommands(t *testing.T) {
	// usage writes to stderr; just ensure the command table stays in sync
	// by checking run() dispatches everything usage lists.
	for _, sub := range []string{"exp", "orient", "color3", "deltacolor", "compress", "graphinfo", "engine", "msgred", "decomp", "detlll", "prove", "verifyproof"} {
		// Dispatching with bad flags still proves the subcommand exists:
		// flag parse errors differ from "unknown subcommand".
		err := run([]string{sub, "-definitely-not-a-flag"})
		if err != nil && strings.Contains(err.Error(), "unknown subcommand") {
			t.Errorf("subcommand %q not dispatched", sub)
		}
	}
}

func TestDotGenLoad(t *testing.T) {
	dir := t.TempDir()
	el := dir + "/g.el"
	if err := run([]string{"gen", "-graph", "torus", "-n", "25", "-o", el}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"load", "-i", el}); err != nil {
		t.Fatal(err)
	}
	dot := dir + "/g.dot"
	if err := run([]string{"dot", "-graph", "cycle", "-n", "40", "-schema", "orient", "-o", dot}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Error("dot output missing digraph")
	}
	if err := run([]string{"dot", "-graph", "cycle", "-n", "20", "-schema", "nope"}); err == nil {
		t.Error("unknown overlay accepted")
	}
	if err := run([]string{"load", "-i", dir + "/missing.el"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"load"}); err == nil {
		t.Error("load without -i accepted")
	}
}

// TestClusterKillsShardsOnBindConflict forces `locad cluster` down its
// mid-spawn error path — the shard comes up fine, then the router's own
// net.Listen hits an occupied address — and asserts the already-spawned
// shard process does not outlive the failed command. Before the teardown
// fix, error paths leaked live shard children.
func TestClusterKillsShardsOnBindConflict(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// cmdCluster prints "locad cluster: shard0 pid N at URL" on stdout;
	// capture it through a pipe to learn the spawned pid.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	runErr := run([]string{"cluster", "-addr", l.Addr().String(), "-shards", "1", "-grace", "3s"})
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	r.Close()

	if runErr == nil {
		t.Fatalf("cluster on occupied %s succeeded, want bind error; output:\n%s", l.Addr(), out)
	}

	var pids []int
	for _, line := range strings.Split(string(out), "\n") {
		rest, ok := strings.CutPrefix(line, "locad cluster: shard")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) >= 3 && fields[1] == "pid" {
			pid, err := strconv.Atoi(fields[2])
			if err != nil {
				t.Fatalf("unparseable pid in %q: %v", line, err)
			}
			pids = append(pids, pid)
		}
	}
	if len(pids) != 1 {
		t.Fatalf("expected 1 shard pid line, got %d; output:\n%s", len(pids), out)
	}

	// The teardown defer reaps each shard before run() returns, so the pid
	// must already be gone; poll briefly to absorb scheduler lag.
	for _, pid := range pids {
		deadline := time.Now().Add(5 * time.Second)
		for syscall.Kill(pid, 0) == nil {
			if time.Now().After(deadline) {
				syscall.Kill(pid, syscall.SIGKILL)
				t.Fatalf("shard pid %d still alive after cluster bind failure", pid)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

func TestStoreSubcommand(t *testing.T) {
	dir := t.TempDir()
	st, err := persist.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("advice:test", persist.KindAdvice, []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("table:test", persist.KindTable, []byte("payload-t")); err != nil {
		t.Fatal(err)
	}

	for _, args := range [][]string{
		{"store", "ls", "-dir", dir},
		{"store", "verify", "-dir", dir},
		{"store", "gc", "-dir", dir, "-max-mb", "64"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}

	// gc to a zero budget evicts everything.
	if err := run([]string{"store", "gc", "-dir", dir, "-max-mb", "0"}); err != nil {
		t.Fatal(err)
	}
	if recs, err := st.List(); err != nil || len(recs) != 0 {
		t.Errorf("after gc -max-mb 0: %d records, err %v", len(recs), err)
	}

	// verify reports damage with a failing exit.
	if err := st.Put("k", persist.KindAdvice, []byte("x")); err != nil {
		t.Fatal(err)
	}
	recs, err := st.List()
	if err != nil || len(recs) != 1 {
		t.Fatalf("List: %v, %d records", err, len(recs))
	}
	path := dir + "/" + recs[0].File
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"store", "verify", "-dir", dir}); err == nil {
		t.Error("verify of a corrupt store succeeded")
	}

	// Usage errors.
	for _, args := range [][]string{
		{"store"},
		{"store", "frobnicate", "-dir", dir},
		{"store", "ls"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
