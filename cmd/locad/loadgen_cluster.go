package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// clusterPoint is one fleet size's measurement in the sweep.
type clusterPoint struct {
	Shards      int             `json:"shards"`
	Cold        phaseReport     `json:"cold"`
	Warm        phaseReport     `json:"warm"`
	RouterStats json.RawMessage `json:"router_stats,omitempty"`
}

// runClusterSweep measures routed throughput at several fleet sizes: for
// each count it spawns a fresh `locad cluster` (router + shards on
// ephemeral ports), drives the router cold — cycling `seeds` distinct graph
// seeds so the routed keys spread over the owners — and then warm on one
// hot key long enough to trip replication, scrapes the router stats, and
// tears the fleet down.
//
// The report records runtime.NumCPU(): aggregate cold scaling is a
// CPU-parallelism effect, so the bench-regression gate only enforces the
// scaling floor when the recording machine actually had the cores
// (DESIGN.md §9); cold_scaling_4x is reported either way.
func runClusterSweep(schema, family string, n int, shardCounts []int, seeds, concurrency int, d time.Duration, hotThreshold int, jsonOut bool) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	client := newLoadgenClient()

	makeBody := func(seed int64, cached bool) []byte {
		b, _ := json.Marshal(map[string]any{
			"schema": schema,
			"graph":  map[string]any{"family": family, "n": n, "seed": seed},
			"cache":  cached,
		})
		return b
	}
	coldBodies := make([][]byte, seeds)
	for i := range coldBodies {
		coldBodies[i] = makeBody(int64(i+1), false)
	}
	hotBody := makeBody(1, true)

	points := make([]clusterPoint, 0, len(shardCounts))
	for _, shards := range shardCounts {
		cmd, addr, err := spawnAwaitLine(exe, []string{
			"cluster", "-addr", "127.0.0.1:0",
			"-shards", fmt.Sprint(shards),
			"-hot-threshold", fmt.Sprint(hotThreshold),
		}, "locad cluster: router listening on ", 60*time.Second, true)
		if err != nil {
			return fmt.Errorf("starting %d-shard cluster: %w", shards, err)
		}
		point, err := func() (clusterPoint, error) {
			base := "http://" + addr
			if _, err := postOnce(client, base+"/v1/decode", hotBody); err != nil {
				return clusterPoint{}, fmt.Errorf("priming %d-shard cluster: %w", shards, err)
			}
			cold, err := runPhaseBodies(client, base+"/v1/decode", coldBodies, concurrency, d)
			if err != nil {
				return clusterPoint{}, err
			}
			warm, err := runPhase(client, base+"/v1/decode", hotBody, concurrency, d)
			if err != nil {
				return clusterPoint{}, err
			}
			p := clusterPoint{Shards: shards, Cold: cold, Warm: warm}
			if stats, err := scrapeStats(client, base); err == nil {
				p.RouterStats = stats
			}
			return p, nil
		}()
		// Graceful fleet teardown on success AND failure: TERM lets the
		// cluster process run its shard-teardown defer; if it hangs, the
		// group-wide KILL escalation still reaps the shards with it.
		terminateProc(cmd, 15*time.Second)
		if err != nil {
			return err
		}
		points = append(points, point)
		if !jsonOut {
			fmt.Printf("  %d shards: cold %8.1f req/s  warm %8.1f req/s\n",
				shards, point.Cold.RPS, point.Warm.RPS)
		}
	}

	scaling4x := 0.0
	var rps1 float64
	for _, p := range points {
		if p.Shards == 1 {
			rps1 = p.Cold.RPS
		}
		if p.Shards == 4 && rps1 > 0 {
			scaling4x = p.Cold.RPS / rps1
		}
	}

	if jsonOut {
		report := map[string]any{
			"cpus":            runtime.NumCPU(),
			"schema":          schema,
			"graph":           map[string]any{"family": family, "n": n},
			"seeds":           seeds,
			"concurrency":     concurrency,
			"phase_seconds":   d.Seconds(),
			"hot_threshold":   hotThreshold,
			"points":          points,
			"cold_scaling_4x": scaling4x,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	if scaling4x > 0 {
		fmt.Printf("  cold scaling 4-shard/1-shard: %.2fx (%d cpus)\n", scaling4x, runtime.NumCPU())
	}
	return nil
}

// parseShardCounts parses the -cluster-shards list ("1,2,4,8").
func parseShardCounts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad shard count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
