package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"localadvice/internal/local"
	"localadvice/internal/obs"
)

// cmdTrace runs the radius-T view-gathering reference protocol on a chosen
// engine with an explicit metrics collector attached, writes the per-round
// JSONL trace, and prints the summary line. It is the observability twin of
// `locad engine`: same workload and flags, but the product is the trace
// rather than the checksum.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	kind, n, seed := graphFlags(fs)
	radius := fs.Int("radius", 2, "view radius T of the reference protocol")
	engine := fs.String("engine", "message", "execution engine: ball, message (sharded scheduler), goroutine, sequential")
	out := fs.String("o", "-", "JSONL trace output file ('-' for stdout)")
	profilePath := fs.String("profile", "", "write a CPU profile of the traced run to this file")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := applyWorkers(*workers)
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	if *profilePath != "" {
		f, err := os.Create(*profilePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	c := &obs.Collector{}
	c.Start()
	decide := func(view *local.View) any { return view.G.N()*1_000_000 + view.G.M() }
	cfg := local.RunConfig{Workers: w, Metrics: c}
	var stats local.Stats
	switch *engine {
	case "ball":
		_, stats, err = local.TryRunBallConfig(g, nil, *radius, decide, cfg)
	case "message":
		_, stats, err = local.RunMessageConfig(g, &local.GatherProtocol{Radius: *radius, Decide: decide}, nil, cfg)
	case "goroutine":
		_, stats, err = local.RunGoroutineConfig(g, &local.GatherProtocol{Radius: *radius, Decide: decide}, nil, cfg)
	case "sequential":
		_, stats, err = local.RunSequentialConfig(g, &local.GatherProtocol{Radius: *radius, Decide: decide}, nil, cfg)
	default:
		return fmt.Errorf("unknown engine %q (have ball, message, goroutine, sequential)", *engine)
	}
	if err != nil {
		return err
	}
	c.Stop()

	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := c.WriteJSONL(dst); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s engine=%s radius=%d workers=%d rounds=%d messages=%d\n",
		g, *engine, *radius, w, stats.Rounds, stats.Messages)
	fmt.Fprintln(os.Stderr, c.Summary().String())
	return nil
}
