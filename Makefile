GO ?= go
DATE := $(shell date +%F)

.PHONY: all build test check bench bench-msg exp clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# CI gate: vet plus the race-enabled suite.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Full benchmark sweep, recorded as BENCH_<date>.json for regression tracking.
bench:
	scripts/bench.sh BENCH_$(DATE).json

# Message-engine + LLL subset (sharded scheduler vs goroutine engine,
# Moser-Tardos resampling throughput), recorded the same way.
bench-msg:
	scripts/bench.sh BENCH_$(DATE)_msg.json 'Engine|MessageEngine|MoserTardos|LLL'

# Regenerate the experiment tables (EXPERIMENTS.md source of truth).
exp:
	$(GO) run ./cmd/locad exp

clean:
	$(GO) clean ./...
