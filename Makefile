GO ?= go
DATE := $(shell date +%F)

.PHONY: all build test check check-race fuzz bench bench-msg exp clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# CI gate: vet, the full suite (which replays every fuzz seed corpus), and a
# race-enabled run of the engine-equivalence and fault-injection property
# tests — the tests most likely to catch a data race introduced in the
# parallel engines.
check:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -count=1 -run 'Equivalence|Matches|WorkerCount|Crash|Fault|Normalize' ./internal/local ./internal/fault

# Exhaustive race gate (slower): the whole suite under the race detector.
check-race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Short fuzzing bursts on the parser and advice-codec fuzz targets; the seed
# corpora alone run on every plain `go test`.
fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=30s ./internal/graph
	$(GO) test -fuzz=FuzzDecodeVarArbitraryAdvice -fuzztime=30s ./internal/orient
	$(GO) test -fuzz=FuzzDecodeArbitraryBits -fuzztime=30s ./internal/growth

# Full benchmark sweep, recorded as BENCH_<date>.json for regression tracking.
bench:
	scripts/bench.sh BENCH_$(DATE).json

# Message-engine + LLL subset (sharded scheduler vs goroutine engine,
# Moser-Tardos resampling throughput), recorded the same way.
bench-msg:
	scripts/bench.sh BENCH_$(DATE)_msg.json 'Engine|MessageEngine|MoserTardos|LLL'

# Regenerate the experiment tables (EXPERIMENTS.md source of truth).
exp:
	$(GO) run ./cmd/locad exp

clean:
	$(GO) clean ./...
