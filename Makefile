GO ?= go
DATE := $(shell date +%F)

.PHONY: all build test check check-race cover fuzz bench bench-msg exp serve-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# CI gate: vet, the full suite (which replays every fuzz seed corpus), a
# race-enabled run of the engine-equivalence and fault-injection property
# tests — the tests most likely to catch a data race introduced in the
# parallel engines — plus the serving layer's concurrency tests (cache
# singleflight, shutdown drain, load shedding) under the race detector, the
# serve round-trip smoke, the benchmark-regression comparison against the
# newest recorded BENCH_*.json baseline, and the per-package coverage floor.
check:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -count=1 -run 'Equivalence|Matches|WorkerCount|Crash|Fault|Normalize|Decomp|Partition|Deterministic|RunDecider' ./internal/local ./internal/fault ./internal/decomp ./internal/lll
	$(GO) test -race -count=1 -run 'Race|Singleflight|Property|Flush|Cached' ./internal/server ./internal/cache ./internal/cluster
	$(MAKE) serve-smoke
	LOCAD_BENCH_REGRESSION=1 $(GO) test -count=1 -run TestBenchRegression .
	$(MAKE) cover

# Per-package coverage floor: the packages at the heart of the reproduction
# (engines, the graph substrate including the frugal engine's skeleton
# construction, schema substrate, instrumentation) must each stay at or
# above 70% statement coverage. The decomposition and LLL-solver packages
# are newer and smaller, so they carry a stricter 85% floor of their own.
COVER_FLOOR := 70.0
COVER_PKGS  := ./internal/local ./internal/graph ./internal/core ./internal/obs ./internal/server ./internal/cache ./internal/persist ./internal/cluster
DECOMP_COVER_FLOOR := 85.0

cover:
	$(GO) test -count=1 -cover $(COVER_PKGS) | awk -v floor=$(COVER_FLOOR) '\
	{ print } \
	/^ok/ { \
		for (i = 1; i <= NF; i++) if ($$i == "coverage:") { \
			pct = $$(i + 1); sub(/%/, "", pct); \
			if (pct + 0 < floor) { printf "FAIL: %s coverage %s%% below floor %s%%\n", $$2, pct, floor; bad = 1 } \
		} \
	} \
	END { exit bad }'
	$(GO) test -count=1 -cover ./internal/decomp ./internal/lll | awk -v floor=$(DECOMP_COVER_FLOOR) '\
	{ print } \
	/^ok/ { \
		for (i = 1; i <= NF; i++) if ($$i == "coverage:") { \
			pct = $$(i + 1); sub(/%/, "", pct); \
			if (pct + 0 < floor) { printf "FAIL: %s coverage %s%% below floor %s%%\n", $$2, pct, floor; bad = 1 } \
		} \
	} \
	END { exit bad }'

# Exhaustive race gate (slower): the whole suite under the race detector.
check-race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Short fuzzing bursts on the parser and advice-codec fuzz targets; the seed
# corpora alone run on every plain `go test`.
fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=30s ./internal/graph
	$(GO) test -fuzz=FuzzDecodeVarArbitraryAdvice -fuzztime=30s ./internal/orient
	$(GO) test -fuzz=FuzzDecodeArbitraryBits -fuzztime=30s ./internal/growth
	$(GO) test -fuzz=FuzzHandleDecode -fuzztime=30s ./internal/server
	$(GO) test -fuzz=FuzzTableBinary -fuzztime=30s ./internal/persist
	$(GO) test -fuzz=FuzzDecompose -fuzztime=30s ./internal/decomp
	$(GO) test -fuzz=FuzzSolveDeterministic -fuzztime=30s ./internal/lll

# Full benchmark sweep, recorded as BENCH_<date>.json for regression tracking.
bench:
	scripts/bench.sh BENCH_$(DATE).json

# Message-engine + LLL subset (sharded scheduler vs goroutine engine,
# Moser-Tardos resampling throughput), recorded the same way.
bench-msg:
	scripts/bench.sh BENCH_$(DATE)_msg.json 'Engine|MessageEngine|MoserTardos|LLL'

# Serving-layer smoke: build locad, start `locad serve` on an ephemeral
# port, drive it with a short loadgen, scrape /v1/stats, and check that
# SIGTERM drains to a clean exit.
serve-smoke:
	scripts/serve_smoke.sh

# Regenerate the experiment tables (EXPERIMENTS.md source of truth).
exp:
	$(GO) run ./cmd/locad exp

clean:
	$(GO) clean ./...
