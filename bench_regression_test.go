package localadvice_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// benchReport mirrors the JSON written by scripts/bench.sh.
type benchReport struct {
	Date       string `json:"date"`
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
	Serve struct {
		Batch *struct {
			ItemsPerSecond float64 `json:"items_per_second"`
		} `json:"batch"`
		Restart *struct {
			FirstDecodeNanos     float64 `json:"first_decode_nanos"`
			RecomputeNanos       float64 `json:"recompute_nanos"`
			StoreLoadNanos       float64 `json:"store_load_nanos"`
			EngineComputeNanos   float64 `json:"engine_compute_nanos"`
			RecomputeOverRestart float64 `json:"recompute_over_restart"`
		} `json:"restart"`
	} `json:"serve"`
	Msgred *struct {
		MessageReduction float64 `json:"message_reduction"`
		ByteReduction    float64 `json:"byte_reduction"`
		RoundOverhead    float64 `json:"round_overhead"`
		OutputsMatch     bool    `json:"outputs_match"`
	} `json:"msgred"`
	Decomp *struct {
		Beta   float64 `json:"beta"`
		CPUs   int     `json:"cpus"`
		Points []struct {
			Graph            string  `json:"graph"`
			Workers          int     `json:"workers"`
			Balls            int     `json:"balls"`
			CutFraction      float64 `json:"cut_fraction"`
			IndexRoundsPerS  float64 `json:"index_rounds_per_sec"`
			LowcutRoundsPerS float64 `json:"lowcut_rounds_per_sec"`
			Speedup          float64 `json:"speedup"`
			OutputsMatch     bool    `json:"outputs_match"`
		} `json:"points"`
	} `json:"decomp"`
	DetLLL *struct {
		Seeds  int `json:"seeds"`
		Points []struct {
			Schema      string  `json:"schema"`
			Method      string  `json:"method"`
			Resamplings float64 `json:"resamplings"`
			Evaluations float64 `json:"evaluations"`
			Distinct    int     `json:"distinct"`
			Valid       bool    `json:"valid"`
		} `json:"points"`
		Warm []struct {
			Schema        string  `json:"schema"`
			Requests      int     `json:"requests"`
			DetHitRate    float64 `json:"det_hit_rate"`
			SeededHitRate float64 `json:"seeded_hit_rate"`
		} `json:"warm"`
	} `json:"detlll"`
	Cluster *struct {
		CPUs          int     `json:"cpus"`
		ColdScaling4x float64 `json:"cold_scaling_4x"`
		Points        []struct {
			Shards int `json:"shards"`
			Cold   struct {
				RPS    float64 `json:"rps"`
				Errors int     `json:"errors"`
			} `json:"cold"`
			Warm struct {
				RPS    float64 `json:"rps"`
				Errors int     `json:"errors"`
			} `json:"warm"`
			RouterStats struct {
				Cluster struct {
					Forwards     float64 `json:"forwards"`
					ReplicaHits  float64 `json:"replica_hits"`
					Replications float64 `json:"replications"`
				} `json:"cluster"`
			} `json:"router_stats"`
		} `json:"points"`
	} `json:"cluster"`
}

// newestBenchReport loads the lexicographically newest BENCH_*.json in the
// repo root (the filenames embed an ISO date, so name order is date order).
// Returns ok=false when no baseline has been recorded yet.
func newestBenchReport(t *testing.T) (benchReport, string, bool) {
	t.Helper()
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil || len(matches) == 0 {
		return benchReport{}, "", false
	}
	sort.Strings(matches)
	newest := matches[len(matches)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read %s: %v", newest, err)
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("parse %s: %v", newest, err)
	}
	return r, newest, true
}

// bestOf re-runs a benchmark function n times via testing.Benchmark and
// returns the best (lowest) ns/op, discounting scheduling noise the way a
// human reads repeated bench runs.
func bestOf(n int, fn func(*testing.B)) float64 {
	best := 0.0
	for i := 0; i < n; i++ {
		r := testing.Benchmark(fn)
		ns := float64(r.NsPerOp())
		if i == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// TestBenchRegression guards the two hot paths the perf PRs optimized —
// view construction and the sharded scheduler — against silent regression:
// it re-times them and fails if the best of three runs is more than 30%
// slower than the newest recorded BENCH_*.json baseline.
//
// The test is opt-in via LOCAD_BENCH_REGRESSION=1 (set by `make check`):
// plain `go test ./...` must stay load-independent, and wall-clock
// comparisons under arbitrary machine load are not.
func TestBenchRegression(t *testing.T) {
	if os.Getenv("LOCAD_BENCH_REGRESSION") != "1" {
		t.Skip("set LOCAD_BENCH_REGRESSION=1 to compare against the recorded baseline (make check does)")
	}
	report, path, ok := newestBenchReport(t)
	if !ok {
		t.Skip("no BENCH_*.json baseline recorded; run scripts/bench.sh first")
	}
	baseline := make(map[string]float64, len(report.Benchmarks))
	for _, b := range report.Benchmarks {
		baseline[b.Name] = b.NsPerOp
	}
	const slack = 1.30 // fail only beyond +30%: generous against machine noise
	checks := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkBuildView", BenchmarkBuildView},
		{"BenchmarkEngineScheduler4096", BenchmarkEngineScheduler4096},
	}
	for _, c := range checks {
		want, recorded := baseline[c.name]
		if !recorded || want <= 0 {
			t.Logf("%s: not in baseline %s, skipping", c.name, path)
			continue
		}
		got := bestOf(3, c.fn)
		ratio := got / want
		t.Logf("%s: %.0f ns/op vs baseline %.0f ns/op (%s) — %.2fx", c.name, got, want, path, ratio)
		if ratio > slack {
			t.Errorf("%s regressed: %.0f ns/op is %.0f%% over the %s baseline of %.0f ns/op (threshold +30%%)",
				c.name, got, (ratio-1)*100, path, want)
		}
	}

	// Serving-layer floors: the newest recorded bench run must show the
	// persistent store recovering artifacts on restart at least 10x faster
	// than the engine recomputes them (disk load_nanos vs
	// engine_compute_nanos — the work persistence replaces; the
	// whole-request latencies are recorded alongside but share graph build
	// + table run + verification on both sides), and the binary batch path
	// sustaining at least 100k warm decode items/s — the ISSUE 6 targets.
	// A bench run recorded on a machine where either number slipped below
	// its floor fails the gate.
	if r := report.Serve.Restart; r == nil {
		t.Logf("baseline %s has no \"serve\".restart record; re-run scripts/bench.sh to gate restart recovery", path)
	} else {
		t.Logf("restart recovery: artifact load %.0f ns vs engine recompute %.0f ns — %.1fx (requests: %.0f ns vs %.0f ns) (%s)",
			r.StoreLoadNanos, r.EngineComputeNanos, r.RecomputeOverRestart,
			r.FirstDecodeNanos, r.RecomputeNanos, path)
		if r.RecomputeOverRestart < 10 {
			t.Errorf("restart recovery speedup %.1fx is below the 10x floor (%s)", r.RecomputeOverRestart, path)
		}
	}
	if b := report.Serve.Batch; b == nil {
		t.Logf("baseline %s has no \"serve\".batch record; re-run scripts/bench.sh to gate batch throughput", path)
	} else {
		t.Logf("batch throughput: %.0f items/s (%s)", b.ItemsPerSecond, path)
		if b.ItemsPerSecond < 100_000 {
			t.Errorf("batch throughput %.0f items/s is below the 100k floor (%s)", b.ItemsPerSecond, path)
		}
	}

	// Frugal-engine floors: the recorded 4096-grid flood comparison must
	// show the skeleton simulation cutting transport messages at least 3x
	// at no more than 2x round overhead, with bit-identical outputs — the
	// headline contract of the frugal engine. Byte reduction is logged but
	// not gated (it is workload-shaped; see the E10 gnp row).
	if m := report.Msgred; m == nil {
		t.Logf("baseline %s has no \"msgred\" record; re-run scripts/bench.sh to gate the frugal engine", path)
	} else {
		t.Logf("frugal engine: %.1fx messages, %.1fx bytes at %.2fx rounds, outputs match: %v (%s)",
			m.MessageReduction, m.ByteReduction, m.RoundOverhead, m.OutputsMatch, path)
		if !m.OutputsMatch {
			t.Errorf("recorded msgred run had diverging engine outputs (%s)", path)
		}
		if m.MessageReduction < 3 {
			t.Errorf("frugal message reduction %.1fx is below the 3x floor (%s)", m.MessageReduction, path)
		}
		if m.RoundOverhead > 2 {
			t.Errorf("frugal round overhead %.2fx exceeds the 2x ceiling (%s)", m.RoundOverhead, path)
		}
	}

	// Scheduler-sharding floors. The structural half binds everywhere: the
	// recorded sweep must be non-empty, every point's low-cut and index
	// shardings must have produced bit-identical outputs, every
	// decomposition must be structurally sane (>= 1 ball, cut fraction in
	// [0,1]). The locality half — low-cut shards within noise tolerance of
	// index shards' best rounds/s per graph — is a CPU-parallelism effect, so like
	// the cluster gate it binds only when the recording host had at least 4
	// CPUs (DESIGN.md decision 9).
	if dc := report.Decomp; dc == nil {
		t.Logf("baseline %s has no \"decomp\" record; re-run scripts/bench.sh to gate scheduler sharding", path)
	} else {
		if len(dc.Points) == 0 {
			t.Errorf("recorded decomp sweep has no points (%s)", path)
		}
		bestSpeedup := map[string]float64{}
		for _, p := range dc.Points {
			t.Logf("decomp %s workers %d: %d balls, cut %.4f — index %.0f vs low-cut %.0f rounds/s (%.2fx), match %v (%s)",
				p.Graph, p.Workers, p.Balls, p.CutFraction,
				p.IndexRoundsPerS, p.LowcutRoundsPerS, p.Speedup, p.OutputsMatch, path)
			if !p.OutputsMatch {
				t.Errorf("decomp %s at %d workers recorded diverging sharding outputs (%s)", p.Graph, p.Workers, path)
			}
			if p.Balls < 1 {
				t.Errorf("decomp %s at %d workers recorded %d balls (%s)", p.Graph, p.Workers, p.Balls, path)
			}
			if p.CutFraction < 0 || p.CutFraction > 1 {
				t.Errorf("decomp %s at %d workers recorded cut fraction %v (%s)", p.Graph, p.Workers, p.CutFraction, path)
			}
			if p.Speedup > bestSpeedup[p.Graph] {
				bestSpeedup[p.Graph] = p.Speedup
			}
		}
		if dc.CPUs >= 4 {
			graphs := make([]string, 0, len(bestSpeedup))
			for g := range bestSpeedup {
				graphs = append(graphs, g)
			}
			sort.Strings(graphs)
			for _, g := range graphs {
				// 0.95x rather than 1.0x: the locality effect is robust on
				// the structured families but the recorded numbers carry
				// timing noise, and an exact parity floor would flake on a
				// re-recorded baseline without any code regression.
				if bestSpeedup[g] < 0.95 {
					t.Errorf("decomp %s best low-cut speedup %.2fx is below the 0.95x floor on a %d-CPU host (%s)",
						g, bestSpeedup[g], dc.CPUs, path)
				}
			}
		} else {
			t.Logf("decomp locality floor not binding: recorded on %d CPUs (<4); structural checks only (%s)", dc.CPUs, path)
		}
	}

	// Deterministic-LLL floors — unconditional, no hardware excuse: the
	// derandomized solvers' guarantees are exact, not statistical. Every
	// recorded det/decomposed point must show zero resamplings, exactly one
	// distinct advice output across the swept seeds, and a verified decode;
	// the Moser–Tardos points must also have decoded validly. The warm-cache
	// contrast must show the det-mode schema's hit rate strictly above the
	// seeded schema's (the payoff of the seedless advice keys, DESIGN.md
	// decision 12).
	if dl := report.DetLLL; dl == nil {
		t.Logf("baseline %s has no \"detlll\" record; re-run scripts/bench.sh to gate the deterministic LLL pipeline", path)
	} else {
		if len(dl.Points) == 0 {
			t.Errorf("recorded detlll sweep has no points (%s)", path)
		}
		for _, p := range dl.Points {
			t.Logf("detlll %s/%s: resamp %.2f, evals %.2f, distinct %d/%d seeds, valid %v (%s)",
				p.Schema, p.Method, p.Resamplings, p.Evaluations, p.Distinct, dl.Seeds, p.Valid, path)
			if !p.Valid {
				t.Errorf("detlll %s/%s recorded an unverified decode (%s)", p.Schema, p.Method, path)
			}
			if p.Method == "det" || p.Method == "decomposed" {
				if p.Resamplings != 0 {
					t.Errorf("detlll %s/%s recorded %.2f resamplings; the deterministic path takes none (%s)",
						p.Schema, p.Method, p.Resamplings, path)
				}
				if p.Distinct != 1 {
					t.Errorf("detlll %s/%s recorded %d distinct outputs across seeds; deterministic advice must be seed-independent (%s)",
						p.Schema, p.Method, p.Distinct, path)
				}
			}
		}
		if len(dl.Warm) == 0 {
			t.Errorf("recorded detlll sweep has no warm-cache contrast (%s)", path)
		}
		for _, w := range dl.Warm {
			t.Logf("detlll %s warm: det hit rate %.2f vs seeded %.2f over %d rotating-seed requests (%s)",
				w.Schema, w.DetHitRate, w.SeededHitRate, w.Requests, path)
			if w.DetHitRate <= w.SeededHitRate {
				t.Errorf("detlll %s det-mode warm hit rate %.2f is not above the seeded %.2f (%s)",
					w.Schema, w.DetHitRate, w.SeededHitRate, path)
			}
		}
	}

	// Cluster-tier floors. Aggregate cold scaling is a CPU-parallelism
	// effect, so the gate is hardware-aware (DESIGN.md decision 9): the
	// ≥3x 4-shard cold-throughput floor binds only when the recording host
	// had at least 4 CPUs. On smaller hosts the gate falls back to
	// structural checks the hardware cannot excuse: every sweep point ran
	// error-free, adding shards never collapsed routed throughput below
	// half the single-shard baseline (bounded routing overhead), and the
	// warm phase tripped hot-key replication with replicas taking reads.
	if c := report.Cluster; c == nil {
		t.Logf("baseline %s has no \"cluster\" record; re-run scripts/bench.sh to gate the shard fleet", path)
	} else {
		var rps1 float64
		replications, replicaHits := 0.0, 0.0
		for _, p := range c.Points {
			t.Logf("cluster %d shards: cold %.0f req/s, warm %.0f req/s, replications %.0f, replica hits %.0f (%s)",
				p.Shards, p.Cold.RPS, p.Warm.RPS,
				p.RouterStats.Cluster.Replications, p.RouterStats.Cluster.ReplicaHits, path)
			if p.Cold.Errors > 0 || p.Warm.Errors > 0 {
				t.Errorf("cluster %d-shard point recorded errors (cold %d, warm %d) (%s)",
					p.Shards, p.Cold.Errors, p.Warm.Errors, path)
			}
			if p.Shards == 1 {
				rps1 = p.Cold.RPS
			}
			if p.Shards > 1 && rps1 > 0 && p.Cold.RPS < 0.5*rps1 {
				t.Errorf("cluster %d-shard cold throughput %.0f req/s collapsed below half the 1-shard %.0f req/s (%s)",
					p.Shards, p.Cold.RPS, rps1, path)
			}
			replications += p.RouterStats.Cluster.Replications
			replicaHits += p.RouterStats.Cluster.ReplicaHits
		}
		if c.CPUs >= 4 {
			t.Logf("cluster cold scaling 4-shard/1-shard: %.2fx on %d CPUs (%s)", c.ColdScaling4x, c.CPUs, path)
			if c.ColdScaling4x < 3 {
				t.Errorf("cluster 4-shard cold scaling %.2fx is below the 3x floor on a %d-CPU host (%s)",
					c.ColdScaling4x, c.CPUs, path)
			}
		} else {
			t.Logf("cluster scaling floor not binding: recorded on %d CPUs (<4); structural checks only (%s)", c.CPUs, path)
		}
		if replications == 0 {
			t.Errorf("no cluster sweep point recorded a completed hot-key replication (%s)", path)
		}
		if replicaHits == 0 {
			t.Errorf("no cluster sweep point recorded warm reads served by a replica (%s)", path)
		}
	}
}
