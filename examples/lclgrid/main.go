// Lclgrid: Theorem 4.1 in action. On graph families of sub-exponential
// growth, ANY locally checkable labeling can be solved with one bit of
// advice per node in a constant (n-independent) number of rounds. We solve
// two different LCLs — 3-coloring and maximal independent set — on growing
// cycles with the same generic schema and watch the round count stay put.
//
// The same program also shows the theorem's boundary: on a complete binary
// tree (exponential growth) the encoder refuses, because the cluster
// boundary outgrows the interior that must store it.
package main

import (
	"fmt"
	"log"

	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/growth"
	"localadvice/internal/lcl"
)

func main() {
	colorSolver := func(g *graph.Graph) (*lcl.Solution, error) {
		return lcl.ColoringSolution(g, lcl.GreedyColoring(g))
	}

	for _, n := range []int{500, 750, 1000} {
		g := graph.Cycle(n)
		s := growth.Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 60, Solver: colorSolver}
		advice, err := s.Encode(g)
		if err != nil {
			log.Fatal(err)
		}
		sol, stats, err := s.Decode(g, advice)
		if err != nil {
			log.Fatal(err)
		}
		if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
			log.Fatal(err)
		}
		ratio, err := core.Sparsity(advice)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("3-coloring on C_%d: %d rounds, 1 bit/node, ones ratio %.4f\n", n, stats.Rounds, ratio)
	}

	// A different LCL, same schema, generic brute-force prover.
	g := graph.Cycle(500)
	s := growth.Schema{Problem: lcl.MIS{}, ClusterRadius: 40}
	advice, err := s.Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	sol, stats, err := s.Decode(g, advice)
	if err != nil {
		log.Fatal(err)
	}
	if err := lcl.Verify(lcl.MIS{}, g, sol); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIS on C_500: %d rounds, solution verified\n", stats.Rounds)

	// The boundary of the theorem: exponential growth.
	tree := graph.CompleteBinaryTree(10)
	ts := growth.Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 8, Solver: colorSolver}
	if _, err := ts.Encode(tree); err != nil {
		fmt.Printf("binary tree (n=%d, exponential growth): encoder refused as the theorem predicts:\n  %v\n", tree.N(), err)
	} else {
		fmt.Println("unexpected: the tree encoded successfully")
	}
}
