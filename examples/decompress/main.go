// Decompress: Contribution 4 of the paper. An arbitrary subset X of edges
// is compressed so that a node of degree d stores about ⌈d/2⌉ + 1 bits —
// nearly matching the d/2 counting lower bound — and is decompressed by a
// LOCAL algorithm. The trick: one extra advice bit per node encodes an
// almost-balanced orientation, after which each node only stores membership
// bits for its *outgoing* edges.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"localadvice/internal/decompress"
	"localadvice/internal/graph"
	"localadvice/internal/orient"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g, err := graph.RandomRegular(150, 6, rng)
	if err != nil {
		log.Fatal(err)
	}

	// A random subset of half the edges: the worst case for compression,
	// since |X| then carries the full m bits of entropy.
	x := make(decompress.EdgeSet)
	for e := 0; e < g.M(); e++ {
		if rng.Intn(2) == 0 {
			x[e] = true
		}
	}
	fmt.Printf("graph: %v, |X| = %d of %d edges\n", g, len(x), g.M())

	orientParams := orient.Params{MarkSpacing: 20, MarkWindow: 20}
	for _, codec := range []decompress.Codec{decompress.Trivial{}, decompress.Oriented{P: orientParams}} {
		st, err := decompress.Measure(codec, g, x)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s avg %.2f bits/node, max %d bits, decode rounds %d, roundtrip exact: %v\n",
			codec.Name()+":", st.AvgBits, st.MaxBits, st.Rounds, st.Exact)
	}
	fmt.Printf("counting lower bound: any exact codec needs >= m/n = %.1f bits/node on average\n",
		float64(g.M())/float64(g.N()))
}
