// Quickstart: the full encode → decode → verify loop of an advice schema.
//
// The prover (a centralized entity that sees the whole graph) computes a
// few advice bits; the decoder is a LOCAL algorithm whose round count
// depends only on Δ and the schema parameters — here it solves the
// almost-balanced orientation problem of Section 5, which without advice
// needs Ω(n) rounds on a cycle.
package main

import (
	"fmt"
	"log"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/orient"
)

func main() {
	// A cycle of 400 nodes: one long trail, the hardest case for
	// orientation without advice.
	g := graph.Cycle(400)

	schema := orient.Schema{P: orient.DefaultParams()}

	// 1. The prover encodes: a sparse set of marked node pairs, two bits
	//    each, carrying the trail direction.
	advice, err := schema.EncodeVar(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v\n", g)
	fmt.Printf("advice: %d bit-holding nodes, %d bits total (%.2f%% of nodes hold bits)\n",
		len(advice), advice.TotalBits(), 100*float64(len(advice))/float64(g.N()))

	// 2. Every node decodes from its local view.
	sol, stats, err := schema.DecodeVar(g, advice, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded in %d LOCAL rounds (independent of n — try changing 400 above)\n", stats.Rounds)

	// 3. Verify the LCL constraints everywhere.
	if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
		log.Fatal(err)
	}
	fmt.Println("orientation verified: |indegree - outdegree| <= 1 at every node")

	// Compare with the zero-advice baseline, which must see whole trails.
	_, base := orient.NoAdviceOrientation(g)
	fmt.Printf("no-advice baseline: %d rounds (grows linearly with n)\n", base.Rounds)
}
