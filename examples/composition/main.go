// Composition: the paper's key technique (Section 1.8). Composable schemas
// are built for subproblems, composed with Lemma 1 into a schema for the
// target problem, and finally converted to a uniform one-bit-per-node
// schema with Lemma 2.
//
// Here the splitting problem (red/blue edge coloring, balanced at every
// node) is solved by composing three stages exactly as in the paper's
// running example: Πv (2-coloring), Πo (balanced orientation), Πe (combine).
// Then the balanced-orientation schema alone — whose advice naturally sits
// on ADJACENT node pairs — is pushed through the grouped Lemma 2 conversion
// into literally one bit per node.
package main

import (
	"fmt"
	"log"

	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/orient"
)

func main() {
	// --- Lemma 1: compose three stages into a splitting schema. ---
	g := graph.Torus2D(6, 8) // bipartite, 4-regular: all degrees even
	pipeline := orient.NewSplittingPipeline(6, orient.DefaultParams())

	va, err := pipeline.EncodeVar(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("splitting pipeline on %v:\n", g)
	fmt.Printf("  merged advice: %d holders, %d bits total (tagged per stage)\n",
		len(va), va.TotalBits())

	sol, stats, err := pipeline.DecodeVar(g, va, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := lcl.Verify(lcl.Splitting{}, g, sol); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  decoded a valid splitting in %d rounds (2-coloring + orientation + combine)\n\n", stats.Rounds)

	// --- Lemma 2: one bit per node, even with adjacent holders. ---
	cycle := graph.Cycle(1040)
	schema := core.AsGroupedOneBitSchema(
		orient.Schema{P: orient.Params{MarkSpacing: 260, MarkWindow: 15}},
		core.GroupedOneBitCodec{Radius: 120, GroupRadius: 2})
	oriented, advice, oneBitStats, err := core.RunAndVerify(schema, cycle)
	if err != nil {
		log.Fatal(err)
	}
	kind, beta := core.Classify(advice)
	ratio, err := core.Sparsity(advice)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orientation schema on %v through the Lemma 2 conversion:\n", cycle)
	fmt.Printf("  advice: %v, %d bit per node, ones ratio %.4f\n", kind, beta, ratio)
	fmt.Printf("  decoded and verified in %d rounds\n", oneBitStats.Rounds)
	if err := lcl.Verify(lcl.BalancedOrientation{}, cycle, oriented); err != nil {
		log.Fatal(err)
	}
}
