// Threecolor: Theorem 7.1. 3-coloring a 3-colorable graph is NP-hard
// centrally and global in the LOCAL model, yet exactly ONE bit of advice
// per node lets every node pick its color after poly(Δ) rounds. One bit
// marks the nodes of color 1; extra mark groups inside each large
// {2,3}-component carry the parity hint that picks the right 2-coloring.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"localadvice/internal/coloring"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	g, planted := graph.RandomColorable(60, 3, 0.12, rng)
	graph.AssignPermutedIDs(g, rng)
	fmt.Printf("graph: %v (3-colorable by construction; planted coloring hidden from the schema)\n", g)
	_ = planted // the schema re-derives its own coloring with an exact solver

	schema := coloring.ThreeColoring{CoverRadius: 10, GroupSpread: 2}
	advice, err := schema.Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	kind, beta := core.Classify(advice)
	ratio, err := core.Sparsity(advice)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advice: %v, beta = %d bit per node, ones ratio %.3f\n", kind, beta, ratio)

	sol, stats, err := schema.Decode(g, advice)
	if err != nil {
		log.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
		log.Fatal(err)
	}
	counts := map[int]int{}
	for _, c := range sol.Node {
		counts[c]++
	}
	fmt.Printf("decoded a proper 3-coloring in %d rounds; class sizes: %v\n", stats.Rounds, counts)
	fmt.Println("note the ones ratio stays bounded away from zero — Section 7 conjectures this advice cannot be made arbitrarily sparse")
}
