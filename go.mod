module localadvice

go 1.24
